//! The batch inference engine — Algorithm 1 of the paper, in software.
//!
//! For every incoming batch of chronologically ordered edges the engine:
//!
//! 1. **sample** — reads each touched vertex's most-recent-`mr` neighbor
//!    list from the FIFO neighbor table;
//! 2. **memory** — consumes the cached mailbox messages and runs the GRU to
//!    produce updated vertex memory, then caches the new raw messages of the
//!    current batch (information-leak-safe ordering);
//! 3. **GNN** — computes the output embedding of every touched vertex with
//!    the configured attention aggregator and time encoder;
//! 4. **update** — writes the new memory back, records the new interactions
//!    in the neighbor table, and logs the commit order.
//!
//! Wall-clock time per stage (Table I), MAC/MEM counters (Tables I–II), and
//! per-batch latencies (Fig. 5) are collected as the stream is processed.

use crate::complexity::{OpCounts, StageOps};
use crate::config::{AttentionKind, TimeEncoderKind};
use crate::memory::NodeMemory;
use crate::model::{EmbeddingJob, EmbeddingOutput, NeighborContext, NeighborRef, TgnModel};
use crate::profiling::{Stage, StageTimer, StageTimings};
use crate::stages::{self, SampledBatch};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::Duration;
use tgnn_graph::chronology::CommitLog;
use tgnn_graph::{
    EventBatch, FifoSampler, InteractionEvent, NodeId, TemporalGraph, TemporalSampler, Timestamp,
};
use tgnn_tensor::{Float, Matrix, Workspace};

/// How the engine executes the per-batch computation.
///
/// All three modes produce **bit-identical embeddings**: the batched GEMMs
/// and the parallel split preserve each vertex's accumulation order exactly
/// (asserted by the engine's mode-equivalence tests).  The modes differ only
/// in speed and in how easy they are to reason about:
///
/// * [`ExecMode::Serial`] — the literal Algorithm-1 reference loop, one
///   vertex at a time on the blocked kernels.  Slowest; kept as the
///   deterministic baseline every optimisation is validated against.
/// * [`ExecMode::Batched`] — single-threaded hot path: one packed GEMM per
///   weight matrix per batch, all temporaries from a reusable [`Workspace`]
///   (no hot-path allocation).
/// * [`ExecMode::Parallel`] — the batched pipeline sharded over touched
///   vertices across rayon workers, one workspace per worker.  The memory
///   and update stages stay sequential, preserving the chronological commit
///   order.  Falls back to `Batched` when only one thread is available or
///   the batch is too small to shard.
/// * [`ExecMode::Quantized`] — the batched pipeline with an int8 weight set
///   attached (see [`crate::quantized`]): the large projections run on the
///   packed int8 GEMM with calibrated activation scales.  The **one mode
///   that is not bit-identical** to the serial reference — its embedding
///   error is measured (cosine similarity / max-abs), not zero, which is why
///   attaching the weights is an explicit step
///   ([`Self::with_quantized`](InferenceEngine::with_quantized)).
///
/// # Selection guide
///
/// Debugging or validating numerics → `Serial`.  Latency-sensitive
/// single-core serving → `Batched`.  Multi-core hosts → `Parallel` (the
/// default; it degrades to `Batched` on one core).  Throughput-bound
/// serving that can afford a measured, gated accuracy budget →
/// calibrate + quantize, then `Quantized` (see [`crate::quantized`]):
///
/// ```
/// use tgnn_core::{ExecMode, InferenceEngine, ModelConfig, TgnModel};
/// # let graph = tgnn_data::generate(&tgnn_data::tiny(5));
/// # let cfg = ModelConfig::tiny(graph.node_feature_dim(), graph.edge_feature_dim());
/// # let model = TgnModel::new(cfg, &mut tgnn_tensor::TensorRng::new(5));
/// # let batches = tgnn_graph::batching::fixed_size_batches(graph.events(), 64);
/// // The three f32 modes are interchangeable bit-for-bit; pick by host.
/// let mut reference: Option<Vec<_>> = None;
/// for mode in [ExecMode::Serial, ExecMode::Batched, ExecMode::Parallel] {
///     let mut engine = InferenceEngine::new(model.clone(), graph.num_nodes()).with_mode(mode);
///     let mut embeddings = Vec::new();
///     for batch in &batches {
///         embeddings.extend(engine.process_batch(batch, &graph).embeddings);
///     }
///     match &reference {
///         None => reference = Some(embeddings),
///         Some(r) => assert_eq!(r, &embeddings, "f32 modes are bit-identical"),
///     }
/// }
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecMode {
    /// Reference per-vertex loop (seed behaviour).
    Serial,
    /// Batched GEMMs on one thread, allocation-free.
    Batched,
    /// Batched GEMMs sharded across rayon workers.
    #[default]
    Parallel,
    /// Batched int8 GEMMs with calibrated static activation scales.
    Quantized,
}

/// Result of processing one batch: the embedding of every touched vertex.
#[derive(Clone, Debug, Default)]
pub struct BatchOutput {
    /// Embeddings keyed by vertex, in order of first appearance in the batch.
    pub embeddings: Vec<(NodeId, Vec<Float>)>,
    /// Wall-clock latency of the batch (receive → all embeddings produced).
    pub latency: Duration,
}

impl BatchOutput {
    /// Looks up the embedding of a vertex.
    pub fn embedding_of(&self, v: NodeId) -> Option<&[Float]> {
        self.embeddings
            .iter()
            .find(|(id, _)| *id == v)
            .map(|(_, e)| e.as_slice())
    }
}

/// Aggregate report over a processed stream — the quantities plotted in
/// Fig. 5 and reported in Tables I–II.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct InferenceReport {
    /// Number of edges processed.
    pub num_events: usize,
    /// Number of dynamic node embeddings generated.
    pub num_embeddings: usize,
    /// Number of batches processed.
    pub num_batches: usize,
    /// Total execution time.
    pub total_time: Duration,
    /// Per-batch latencies.
    pub batch_latencies: Vec<Duration>,
    /// Per-stage wall-clock breakdown.
    pub timings: StageTimings,
    /// Accumulated operation counts.
    pub ops: StageOps,
}

impl InferenceReport {
    /// Throughput in edges per second (Eq. 3).
    pub fn throughput_eps(&self) -> f64 {
        if self.total_time.is_zero() {
            0.0
        } else {
            self.num_events as f64 / self.total_time.as_secs_f64()
        }
    }

    /// Mean per-batch latency.
    pub fn mean_latency(&self) -> Duration {
        if self.batch_latencies.is_empty() {
            Duration::ZERO
        } else {
            self.batch_latencies.iter().sum::<Duration>() / self.batch_latencies.len() as u32
        }
    }

    /// Operation counts per generated embedding (the per-embedding kMAC/kMEM
    /// numbers of Table I).
    pub fn ops_per_embedding(&self) -> OpCounts {
        if self.num_embeddings == 0 {
            OpCounts::default()
        } else {
            OpCounts {
                macs: self.ops.total().macs / self.num_embeddings as u64,
                mems: self.ops.total().mems / self.num_embeddings as u64,
            }
        }
    }
}

/// The inference engine: model + persistent vertex state.
#[derive(Debug)]
pub struct InferenceEngine {
    model: TgnModel,
    memory: NodeMemory,
    sampler: FifoSampler,
    commit_log: CommitLog,
    ops: StageOps,
    timings: StageTimings,
    embeddings_generated: usize,
    events_processed: usize,
    mode: ExecMode,
    /// Scratch for the single-threaded hot path (memory stage + batched GNN).
    ws: Workspace,
    /// Per-worker scratch for [`ExecMode::Parallel`]; persists across batches
    /// so the steady state stays allocation-free.
    par_workspaces: Vec<Workspace>,
    /// Activation recorder attached during an int8 calibration pass
    /// ([`crate::quantized::calibrate_activations`]); `None` in production.
    observer: Option<Box<tgnn_quant::ActivationRecorder>>,
}

impl InferenceEngine {
    /// Creates an engine for a graph with `num_nodes` vertices.
    pub fn new(model: TgnModel, num_nodes: usize) -> Self {
        let memory = NodeMemory::for_config(num_nodes, &model.config);
        let sampler = FifoSampler::new(num_nodes, model.config.sampled_neighbors);
        Self {
            model,
            memory,
            sampler,
            commit_log: CommitLog::new(),
            ops: StageOps::default(),
            timings: StageTimings::default(),
            embeddings_generated: 0,
            events_processed: 0,
            mode: ExecMode::default(),
            ws: Workspace::new(),
            par_workspaces: Vec::new(),
            observer: None,
        }
    }

    /// Builder-style execution-mode override.
    ///
    /// # Panics
    /// Panics when asked for [`ExecMode::Quantized`] without an attached
    /// int8 weight set (see [`Self::with_quantized`]) — running f32 while
    /// reporting `Quantized` would silently misattribute every measurement.
    pub fn with_mode(mut self, mode: ExecMode) -> Self {
        self.set_mode(mode);
        self
    }

    /// Attaches an int8 weight set to the model and switches the engine to
    /// [`ExecMode::Quantized`] — the serving entry point of the quantized
    /// path (see [`crate::quantized`]).
    pub fn with_quantized(mut self, q: std::sync::Arc<crate::quantized::QuantizedTgn>) -> Self {
        self.model.attach_quantized(q);
        self.mode = ExecMode::Quantized;
        self
    }

    /// Attaches an activation recorder to the batched forward paths (used by
    /// the int8 calibration pass; negligible overhead, one call per batch
    /// per hook).
    pub fn set_observer(&mut self, observer: Box<tgnn_quant::ActivationRecorder>) {
        self.observer = Some(observer);
    }

    /// Detaches and returns the activation recorder, if one was attached.
    pub fn take_observer(&mut self) -> Option<Box<tgnn_quant::ActivationRecorder>> {
        self.observer.take()
    }

    /// Switches the execution mode (takes effect from the next batch).
    ///
    /// # Panics
    /// Panics when asked for [`ExecMode::Quantized`] without an attached
    /// int8 weight set — attach one first ([`Self::with_quantized`] does
    /// both in order).
    pub fn set_mode(&mut self, mode: ExecMode) {
        assert!(
            mode != ExecMode::Quantized || self.model.is_quantized(),
            "ExecMode::Quantized requires an attached int8 weight set \
             (InferenceEngine::with_quantized / TgnModel::attach_quantized)"
        );
        self.mode = mode;
    }

    /// The current execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Read access to the model.
    pub fn model(&self) -> &TgnModel {
        &self.model
    }

    /// Read access to the vertex memory.
    pub fn memory(&self) -> &NodeMemory {
        &self.memory
    }

    /// The chronological-commit log (its cleanliness is asserted by the
    /// integration tests).
    pub fn commit_log(&self) -> &CommitLog {
        &self.commit_log
    }

    /// Number of embeddings generated so far.
    pub fn embeddings_generated(&self) -> usize {
        self.embeddings_generated
    }

    /// Resets all vertex state (model weights are kept).
    pub fn reset_state(&mut self) {
        let num_nodes = self.memory.num_nodes();
        self.memory = NodeMemory::for_config(num_nodes, &self.model.config);
        self.sampler = FifoSampler::new(num_nodes, self.model.config.sampled_neighbors);
        self.commit_log = CommitLog::new();
        self.ops = StageOps::default();
        self.timings = StageTimings::default();
        self.embeddings_generated = 0;
        self.events_processed = 0;
    }

    /// Warm-up: replays a chronological event prefix updating only the vertex
    /// state (memory via the GRU, mailbox, neighbor table) without computing
    /// embeddings.  Used to position the engine at the start of the test
    /// split, as the paper does before measuring inference performance.
    pub fn warm_up(&mut self, events: &[InteractionEvent], graph: &TemporalGraph) {
        for chunk in events.chunks(256) {
            let batch = EventBatch::new(chunk.to_vec());
            self.advance_state(&batch, graph);
        }
    }

    /// Processes one batch of new edges and returns the embeddings of every
    /// touched vertex (Algorithm 1) — the synchronous composition of the four
    /// stage entry points ([`Self::stage_sample`], [`Self::stage_memory`],
    /// [`Self::stage_gnn`], [`Self::stage_update`]).
    pub fn process_batch(&mut self, batch: &EventBatch, graph: &TemporalGraph) -> BatchOutput {
        if batch.is_empty() {
            return BatchOutput::default();
        }
        let wall_start = std::time::Instant::now();
        let mut timer = StageTimer::new();

        timer.start(Stage::Sample);
        let sampled = self.stage_sample(batch);

        timer.start(Stage::Memory);
        let updated_memory = self.stage_memory(&sampled, graph);

        timer.start(Stage::Gnn);
        let embeddings = self.stage_gnn(&sampled, &updated_memory, graph);

        timer.start(Stage::Update);
        self.stage_update(&sampled, &updated_memory);
        timer.stop();

        self.timings.merge(&timer.finish());
        self.events_processed += batch.len();
        BatchOutput {
            embeddings,
            latency: wall_start.elapsed(),
        }
    }

    /// Stage 1: samples the supporting temporal neighbors of every touched
    /// vertex from the FIFO neighbor table into one flat arena.
    pub fn stage_sample(&mut self, batch: &EventBatch) -> SampledBatch {
        let k = self.model.config.sampled_neighbors;
        let sampler = &self.sampler;
        let sampled = SampledBatch::assemble(batch.clone(), k, |v, t, k, out| {
            sampler.sample_into(v, t, k, out)
        });
        self.ops.sample.mems += 3 * sampled.total_sampled() as u64;
        sampled
    }

    /// Stage 2: consumes the pending mailbox messages of the touched vertices
    /// and runs the GRU on them, then caches the raw messages generated by
    /// the current batch (Eq. 4–5, information-leak-safe ordering).  Returns
    /// the new memory per vertex — not yet written back; that is
    /// [`Self::stage_update`]'s job.
    pub fn stage_memory(
        &mut self,
        sampled: &SampledBatch,
        graph: &TemporalGraph,
    ) -> HashMap<NodeId, Vec<Float>> {
        let updated_memory = self.update_memories(&sampled.touched);
        for e in sampled.batch.events() {
            self.memory.cache_interaction_messages(
                e.src,
                e.dst,
                graph.edge_feature(e.edge_id),
                e.timestamp,
            );
            self.ops.update.mems += 2 * self.model.config.message_dim() as u64;
        }
        updated_memory
    }

    /// Stage 3: computes the output embedding of every touched vertex with
    /// the configured attention aggregator, in `touched` order.  Reads the
    /// pre-write-back memory table for neighbor rows, exactly like the serial
    /// reference.
    pub fn stage_gnn(
        &mut self,
        sampled: &SampledBatch,
        updated_memory: &HashMap<NodeId, Vec<Float>>,
        graph: &TemporalGraph,
    ) -> Vec<(NodeId, Vec<Float>)> {
        let mut embeddings = Vec::with_capacity(sampled.len());
        match self.mode {
            ExecMode::Serial => {
                for (i, &v) in sampled.touched.iter().enumerate() {
                    let query_time = sampled.query_times[i];
                    let contexts =
                        self.neighbor_contexts(sampled.neighbors_of(i), query_time, graph);
                    let node_feature = if self.model.config.node_feature_dim > 0 {
                        Some(graph.node_feature(v))
                    } else {
                        None
                    };
                    let memory_row = updated_memory
                        .get(&v)
                        .cloned()
                        .unwrap_or_else(|| self.memory.memory_of(v).to_vec());
                    let out = self
                        .model
                        .compute_embedding(&memory_row, node_feature, &contexts);
                    self.count_gnn_ops(contexts.len(), out.used_neighbors.len());
                    embeddings.push((v, out.embedding));
                }
            }
            ExecMode::Batched | ExecMode::Parallel | ExecMode::Quantized => {
                let outputs = self.gnn_stage_fast(sampled, updated_memory, graph);
                for (i, (&v, out)) in sampled.touched.iter().zip(outputs).enumerate() {
                    self.count_gnn_ops(sampled.neighbors_of(i).len(), out.used_neighbors.len());
                    embeddings.push((v, out.embedding));
                }
            }
        }
        self.embeddings_generated += embeddings.len();
        embeddings
    }

    /// Stage 4: writes the updated memory back, records the batch's
    /// interactions in the neighbor table, and logs the chronological
    /// commits.
    pub fn stage_update(
        &mut self,
        sampled: &SampledBatch,
        updated_memory: &HashMap<NodeId, Vec<Float>>,
    ) {
        for (&v, new_mem) in updated_memory {
            let t = sampled.query_time_of(v);
            self.memory.set_memory(v, new_mem, t);
            self.commit_log.commit(v, t);
            self.ops.update.mems += self.model.config.memory_dim as u64;
        }
        for e in sampled.batch.events() {
            self.sampler.observe(e);
            self.ops.update.mems += 6; // two neighbor-table appends of (id, edge, t)
        }
    }

    /// Runs a full event stream split into fixed-size batches and returns the
    /// aggregate report.
    pub fn run_stream(
        &mut self,
        events: &[InteractionEvent],
        graph: &TemporalGraph,
        batch_size: usize,
    ) -> InferenceReport {
        let batches = tgnn_graph::batching::fixed_size_batches(events, batch_size);
        self.run_batches(&batches, graph)
    }

    /// Runs an explicit batch sequence (e.g. 15-minute windows for the
    /// real-time experiment of Fig. 5) and returns the aggregate report.
    pub fn run_batches(
        &mut self,
        batches: &[EventBatch],
        graph: &TemporalGraph,
    ) -> InferenceReport {
        let ops_before = self.ops;
        let timings_before = self.timings;
        let embeddings_before = self.embeddings_generated;
        let start = std::time::Instant::now();
        let mut latencies = Vec::with_capacity(batches.len());
        let mut events = 0;
        for batch in batches {
            let out = self.process_batch(batch, graph);
            latencies.push(out.latency);
            events += batch.len();
        }
        let total_time = start.elapsed();
        let mut ops = self.ops;
        ops.sample.macs -= ops_before.sample.macs;
        ops.sample.mems -= ops_before.sample.mems;
        ops.memory.macs -= ops_before.memory.macs;
        ops.memory.mems -= ops_before.memory.mems;
        ops.gnn.macs -= ops_before.gnn.macs;
        ops.gnn.mems -= ops_before.gnn.mems;
        ops.update.macs -= ops_before.update.macs;
        ops.update.mems -= ops_before.update.mems;

        let mut timings = self.timings;
        timings.sample -= timings_before.sample;
        timings.memory -= timings_before.memory;
        timings.gnn -= timings_before.gnn;
        timings.update -= timings_before.update;

        InferenceReport {
            num_events: events,
            num_embeddings: self.embeddings_generated - embeddings_before,
            num_batches: batches.len(),
            total_time,
            batch_latencies: latencies,
            timings,
            ops,
        }
    }

    /// Accumulated operation counters since construction / reset.
    pub fn ops(&self) -> StageOps {
        self.ops
    }

    /// Accumulated stage timings since construction / reset.
    pub fn timings(&self) -> StageTimings {
        self.timings
    }

    // ----- internals -------------------------------------------------------

    /// Consumes the pending mailbox messages of the touched vertices and runs
    /// the GRU on them, returning the new memory per vertex (not yet written
    /// back).  In the batched/parallel modes all temporaries come from the
    /// engine workspace and the GRU runs on the packed kernels; results are
    /// bit-identical to the serial reference.
    fn update_memories(&mut self, touched: &[NodeId]) -> HashMap<NodeId, Vec<Float>> {
        let cfg = &self.model.config;
        let mut with_messages: Vec<(NodeId, crate::memory::Message)> = Vec::new();
        for &v in touched {
            if let Some(msg) = self.memory.take_message(v) {
                with_messages.push((v, msg));
            }
        }
        if with_messages.is_empty() {
            return HashMap::new();
        }
        let rows = with_messages.len();
        let time_macs = match cfg.time_encoder {
            TimeEncoderKind::Cos => 2 * cfg.time_dim as u64,
            TimeEncoderKind::Lut => 0,
        };

        if self.mode == ExecMode::Serial {
            // Reference path: per-call allocations, blocked GEMM.
            let mut messages = Matrix::zeros(rows, cfg.message_dim());
            let mut memories = Matrix::zeros(rows, cfg.memory_dim);
            let dts: Vec<Float> = with_messages
                .iter()
                .map(|(v, msg)| (msg.event_time - self.memory.last_update(*v)).max(0.0) as Float)
                .collect();
            let encodings = self.model.encode_time(&dts);
            for (i, (v, msg)) in with_messages.iter().enumerate() {
                let assembled = msg.assemble(encodings.row(i));
                messages.set_row(i, &assembled);
                memories.set_row(i, self.memory.memory_of(*v));
                self.ops.memory.mems += (cfg.message_dim() + cfg.memory_dim) as u64;
                self.ops.memory.macs += time_macs + self.model.gru.macs(1);
            }
            let updated = self.model.update_memory(&messages, &memories);
            return with_messages
                .iter()
                .enumerate()
                .map(|(i, (v, _))| (*v, updated.row_to_vec(i)))
                .collect();
        }

        // Hot path: the shared allocation-free memory stage (also used by the
        // streaming pipeline) on this engine's workspace.
        let memory = &self.memory;
        let obs = self
            .observer
            .as_deref_mut()
            .map(|o| o as &mut dyn tgnn_quant::ActivationObserver);
        let out: HashMap<NodeId, Vec<Float>> = stages::run_memory_stage_obs(
            &self.model,
            &with_messages,
            |v| memory.last_update(v),
            |v, dst| dst.copy_from_slice(memory.memory_of(v)),
            &mut self.ws,
            obs,
        )
        .into_iter()
        .collect();
        self.ops.memory.mems += (rows * (cfg.message_dim() + cfg.memory_dim)) as u64;
        self.ops.memory.macs += rows as u64 * (time_macs + self.model.gru.macs(1));
        out
    }

    /// The batched / parallel GNN stage: builds zero-copy [`EmbeddingJob`]s
    /// pointing into the memory table and the graph's feature storage, then
    /// runs [`TgnModel::compute_embeddings_batch`] — on this thread's
    /// workspace in [`ExecMode::Batched`], sharded over rayon workers with
    /// per-worker workspaces in [`ExecMode::Parallel`].  Output order matches
    /// `touched`.
    fn gnn_stage_fast(
        &mut self,
        sampled: &SampledBatch,
        updated_memory: &HashMap<NodeId, Vec<Float>>,
        graph: &TemporalGraph,
    ) -> Vec<EmbeddingOutput> {
        let model = &self.model;
        let memory = &self.memory;
        let cfg = &model.config;
        let touched = &sampled.touched;

        // Flat neighbor-reference arena + per-vertex ranges (one Vec for the
        // whole batch instead of per-vertex context clones).
        let total = sampled.total_sampled();
        let mut nbr_refs: Vec<NeighborRef<'_>> = Vec::with_capacity(total);
        let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(touched.len());
        for (i, _) in touched.iter().enumerate() {
            let query_time = sampled.query_times[i];
            let entries = sampled.neighbors_of(i);
            let start = nbr_refs.len();
            for e in entries {
                nbr_refs.push(NeighborRef {
                    memory: memory.memory_of(e.neighbor),
                    edge_feature: graph.edge_feature(e.edge_id),
                    delta_t: (query_time - e.timestamp).max(0.0) as Float,
                });
            }
            ranges.push((start, entries.len()));
        }
        let jobs: Vec<EmbeddingJob<'_>> = touched
            .iter()
            .zip(&ranges)
            .map(|(&v, &(start, len))| EmbeddingJob {
                memory: updated_memory
                    .get(&v)
                    .map(|m| m.as_slice())
                    .unwrap_or_else(|| memory.memory_of(v)),
                node_feature: if cfg.node_feature_dim > 0 {
                    Some(graph.node_feature(v))
                } else {
                    None
                },
                neighbors: &nbr_refs[start..start + len],
            })
            .collect();

        // A calibration observer must see every batch, so its presence
        // forces the single-thread path even in ExecMode::Parallel —
        // otherwise large batches would shard across rayon workers and
        // their activations would silently go unrecorded, biasing the
        // calibrated ranges.
        if let Some(o) = self.observer.as_deref_mut() {
            return model.compute_embeddings_batch_obs(&jobs, &mut self.ws, Some(o));
        }
        let threads = rayon::current_num_threads();
        if self.mode != ExecMode::Parallel || threads <= 1 || jobs.len() < 2 * threads {
            return model.compute_embeddings_batch(&jobs, &mut self.ws);
        }

        // Shard over rayon workers, one persistent workspace per worker.
        let chunk_size = jobs.len().div_ceil(threads);
        let num_chunks = jobs.len().div_ceil(chunk_size);
        if self.par_workspaces.len() < num_chunks {
            self.par_workspaces.resize_with(num_chunks, Workspace::new);
        }
        let mut results: Vec<Vec<EmbeddingOutput>> = Vec::new();
        results.resize_with(num_chunks, Vec::new);
        let tasks: Vec<(
            &[EmbeddingJob<'_>],
            &mut Workspace,
            &mut Vec<EmbeddingOutput>,
        )> = jobs
            .chunks(chunk_size)
            .zip(self.par_workspaces.iter_mut())
            .zip(results.iter_mut())
            .map(|((chunk, ws), out)| (chunk, ws, out))
            .collect();
        tasks.into_par_iter().for_each(|(chunk, ws, out)| {
            *out = model.compute_embeddings_batch(chunk, ws);
        });
        results.into_iter().flatten().collect()
    }

    /// Builds the [`NeighborContext`] list for a vertex from its sampled
    /// neighbor entries.
    fn neighbor_contexts(
        &mut self,
        entries: &[tgnn_graph::NeighborEntry],
        query_time: Timestamp,
        graph: &TemporalGraph,
    ) -> Vec<NeighborContext> {
        entries
            .iter()
            .map(|e| NeighborContext {
                memory: self.memory.memory_of(e.neighbor).to_vec(),
                edge_feature: graph.edge_feature(e.edge_id).to_vec(),
                delta_t: (query_time - e.timestamp).max(0.0) as Float,
            })
            .collect()
    }

    /// Operation accounting for one embedding with `sampled` candidate
    /// neighbors of which `used` were aggregated.
    fn count_gnn_ops(&mut self, sampled: usize, used: usize) {
        let cfg = &self.model.config;
        let mem = cfg.memory_dim as u64;
        let efeat = cfg.edge_feature_dim as u64;
        let nfeat = cfg.node_feature_dim as u64;
        let nbr_in = cfg.neighbor_input_dim() as u64;
        let q_in = cfg.query_input_dim() as u64;
        let emb = cfg.embedding_dim as u64;
        let sampled = sampled as u64;
        let used = used as u64;

        let fetched = match cfg.attention {
            AttentionKind::Vanilla => sampled,
            AttentionKind::Simplified => used,
        };
        self.ops.gnn.mems += fetched * (mem + efeat) + nfeat;
        let time_macs = match cfg.time_encoder {
            TimeEncoderKind::Cos => 2 * cfg.time_dim as u64 * fetched,
            TimeEncoderKind::Lut => 0,
        };
        let attention_macs = match cfg.attention {
            AttentionKind::Vanilla => q_in * mem + 2 * sampled * nbr_in * mem + 2 * sampled * mem,
            AttentionKind::Simplified => {
                (cfg.sampled_neighbors * cfg.sampled_neighbors) as u64
                    + used * nbr_in * mem
                    + used * mem
            }
        };
        let projection = if nfeat > 0 { nfeat * mem } else { 0 };
        self.ops.gnn.macs += time_macs + attention_macs + projection + 2 * mem * emb;
    }

    /// Advances the vertex state over a batch without producing embeddings
    /// (used by [`Self::warm_up`] and by the trainer between optimisation
    /// batches).
    pub fn advance_state(&mut self, batch: &EventBatch, graph: &TemporalGraph) {
        if batch.is_empty() {
            return;
        }
        let touched = batch.touched_vertices();
        let query_times = latest_event_times(batch);
        let updated = self.update_memories(&touched);
        for e in batch.events() {
            self.memory.cache_interaction_messages(
                e.src,
                e.dst,
                graph.edge_feature(e.edge_id),
                e.timestamp,
            );
        }
        for (&v, new_mem) in &updated {
            let t = query_times[&v];
            self.memory.set_memory(v, new_mem, t);
            self.commit_log.commit(v, t);
        }
        for e in batch.events() {
            self.sampler.observe(e);
        }
        self.events_processed += batch.len();
    }
}

/// The latest event timestamp per vertex within a batch (the query time used
/// for its embedding).
fn latest_event_times(batch: &EventBatch) -> HashMap<NodeId, Timestamp> {
    let mut times = HashMap::new();
    for e in batch.events() {
        for v in e.endpoints() {
            let entry = times.entry(v).or_insert(e.timestamp);
            if e.timestamp > *entry {
                *entry = e.timestamp;
            }
        }
    }
    times
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelConfig, OptimizationVariant};
    use tgnn_data::{generate, tiny};
    use tgnn_tensor::TensorRng;

    fn tiny_setup(variant: OptimizationVariant) -> (TgnModel, TemporalGraph) {
        let graph = generate(&tiny(11));
        let cfg = ModelConfig::tiny(graph.node_feature_dim(), graph.edge_feature_dim())
            .with_variant(variant);
        let mut rng = TensorRng::new(3);
        let mut model = TgnModel::new(cfg, &mut rng);
        if model.config.time_encoder == TimeEncoderKind::Lut {
            let deltas = tgnn_data::delta_t::memory_delta_t(graph.events(), graph.num_nodes());
            model.calibrate_lut(&deltas);
        }
        (model, graph)
    }

    #[test]
    fn batch_produces_one_embedding_per_touched_vertex() {
        let (model, graph) = tiny_setup(OptimizationVariant::Baseline);
        let mut engine = InferenceEngine::new(model, graph.num_nodes());
        let batch = EventBatch::new(graph.events()[..32].to_vec());
        let expected = batch.touched_vertices().len();
        let out = engine.process_batch(&batch, &graph);
        assert_eq!(out.embeddings.len(), expected);
        assert_eq!(engine.embeddings_generated(), expected);
        let first_vertex = out.embeddings[0].0;
        assert!(out.embedding_of(first_vertex).is_some());
        assert!(out.embedding_of(u32::MAX).is_none());
    }

    #[test]
    fn memory_evolves_and_commits_stay_chronological() {
        let (model, graph) = tiny_setup(OptimizationVariant::Baseline);
        let mut engine = InferenceEngine::new(model, graph.num_nodes());
        let report = engine.run_stream(&graph.events()[..200], &graph, 25);
        assert_eq!(report.num_events, 200);
        assert_eq!(report.num_batches, 8);
        assert!(report.num_embeddings > 0);
        assert!(engine.commit_log().is_clean());
        assert!(engine.commit_log().commits() > 0);
        // Some vertex memory must have moved away from zero.
        let moved = (0..graph.num_nodes() as u32)
            .any(|v| engine.memory().memory_of(v).iter().any(|&x| x.abs() > 1e-6));
        assert!(moved, "node memory never updated");
        assert!(report.throughput_eps() > 0.0);
        assert!(report.mean_latency() > Duration::ZERO);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let (model, graph) = tiny_setup(OptimizationVariant::Baseline);
        let mut engine = InferenceEngine::new(model, graph.num_nodes());
        let out = engine.process_batch(&EventBatch::empty(), &graph);
        assert!(out.embeddings.is_empty());
        assert_eq!(engine.embeddings_generated(), 0);
    }

    #[test]
    fn op_counters_track_variant_differences() {
        let (baseline_model, graph) = tiny_setup(OptimizationVariant::Baseline);
        let (pruned_model, _) = tiny_setup(OptimizationVariant::NpSmall);
        let events = &graph.events()[..300];

        let mut base_engine = InferenceEngine::new(baseline_model, graph.num_nodes());
        let base_report = base_engine.run_stream(events, &graph, 30);
        let mut pruned_engine = InferenceEngine::new(pruned_model, graph.num_nodes());
        let pruned_report = pruned_engine.run_stream(events, &graph, 30);

        assert_eq!(base_report.num_embeddings, pruned_report.num_embeddings);
        assert!(
            pruned_report.ops.total().macs < base_report.ops.total().macs,
            "pruned model must do less compute"
        );
        assert!(
            pruned_report.ops.gnn.mems < base_report.ops.gnn.mems,
            "pruned model must fetch fewer neighbor features"
        );
        assert!(base_report.ops_per_embedding().macs > 0);
    }

    #[test]
    fn warm_up_advances_state_without_embeddings() {
        let (model, graph) = tiny_setup(OptimizationVariant::Sat);
        let mut engine = InferenceEngine::new(model, graph.num_nodes());
        engine.warm_up(graph.train_events(), &graph);
        assert_eq!(engine.embeddings_generated(), 0);
        assert!(engine.memory().pending_messages() > 0);
        assert!(engine.commit_log().is_clean());
        // After warm-up, processing the validation events still works.
        let batch = EventBatch::new(graph.val_events().to_vec());
        let out = engine.process_batch(&batch, &graph);
        assert!(!out.embeddings.is_empty());
    }

    #[test]
    fn reset_clears_state_but_keeps_weights() {
        let (model, graph) = tiny_setup(OptimizationVariant::Baseline);
        let before = model.num_parameters();
        let mut engine = InferenceEngine::new(model, graph.num_nodes());
        let _ = engine.run_stream(&graph.events()[..100], &graph, 20);
        engine.reset_state();
        assert_eq!(engine.embeddings_generated(), 0);
        assert_eq!(engine.ops().total().macs, 0);
        assert_eq!(engine.model().num_parameters(), before);
        assert_eq!(engine.memory().pending_messages(), 0);
    }

    #[test]
    fn all_exec_modes_produce_bitwise_identical_embeddings() {
        for variant in [
            OptimizationVariant::Baseline,
            OptimizationVariant::Sat,
            OptimizationVariant::NpMedium,
        ] {
            let (model, graph) = tiny_setup(variant);
            let events = &graph.events()[..240];

            let mut outputs: Vec<Vec<(NodeId, Vec<Float>)>> = Vec::new();
            let mut commits = Vec::new();
            for mode in [ExecMode::Serial, ExecMode::Batched, ExecMode::Parallel] {
                let mut engine =
                    InferenceEngine::new(model.clone(), graph.num_nodes()).with_mode(mode);
                let mut all = Vec::new();
                for chunk in events.chunks(30) {
                    let batch = EventBatch::new(chunk.to_vec());
                    let out = engine.process_batch(&batch, &graph);
                    all.extend(out.embeddings);
                }
                assert!(engine.commit_log().is_clean(), "{variant:?} {mode:?}");
                commits.push(engine.commit_log().commits());
                outputs.push(all);
            }

            let serial = &outputs[0];
            for (mode_idx, other) in outputs.iter().enumerate().skip(1) {
                assert_eq!(serial.len(), other.len(), "{variant:?} mode {mode_idx}");
                for ((v_a, emb_a), (v_b, emb_b)) in serial.iter().zip(other) {
                    assert_eq!(v_a, v_b, "{variant:?} vertex order diverged");
                    assert_eq!(
                        emb_a, emb_b,
                        "{variant:?}: embeddings of vertex {v_a} differ between Serial and mode {mode_idx}"
                    );
                }
            }
            assert!(commits.windows(2).all(|w| w[0] == w[1]));
        }
    }

    #[test]
    fn manual_stage_composition_matches_process_batch() {
        let (model, graph) = tiny_setup(OptimizationVariant::Sat);
        let mut whole =
            InferenceEngine::new(model.clone(), graph.num_nodes()).with_mode(ExecMode::Batched);
        let mut staged =
            InferenceEngine::new(model, graph.num_nodes()).with_mode(ExecMode::Batched);
        for chunk in graph.events()[..180].chunks(40) {
            let batch = EventBatch::new(chunk.to_vec());
            let out = whole.process_batch(&batch, &graph);
            let sampled = staged.stage_sample(&batch);
            let updated = staged.stage_memory(&sampled, &graph);
            let embeddings = staged.stage_gnn(&sampled, &updated, &graph);
            staged.stage_update(&sampled, &updated);
            assert_eq!(out.embeddings, embeddings);
        }
        assert!(staged.commit_log().is_clean());
        assert_eq!(whole.embeddings_generated(), staged.embeddings_generated());
    }

    #[test]
    fn batched_mode_steady_state_is_allocation_free_in_gemm_scratch() {
        let (model, graph) = tiny_setup(OptimizationVariant::Sat);
        let mut engine =
            InferenceEngine::new(model, graph.num_nodes()).with_mode(ExecMode::Batched);
        // Warm up the workspace on a few batches.
        for chunk in graph.events()[..300].chunks(50) {
            let _ = engine.process_batch(&EventBatch::new(chunk.to_vec()), &graph);
        }
        let warm = engine.ws.heap_allocs();
        for chunk in graph.events()[300..600].chunks(50) {
            let _ = engine.process_batch(&EventBatch::new(chunk.to_vec()), &graph);
        }
        // The workspace may only grow if a later batch is strictly larger
        // than anything seen during warm-up; with fixed-size batches the
        // growth must be tiny compared to the number of kernel invocations.
        let growth = engine.ws.heap_allocs() - warm;
        assert!(
            growth <= 4,
            "workspace kept allocating in steady state: {growth} new allocs"
        );
    }

    #[test]
    fn report_per_batch_latency_count_matches_batches() {
        let (model, graph) = tiny_setup(OptimizationVariant::NpMedium);
        let mut engine = InferenceEngine::new(model, graph.num_nodes());
        let batches = tgnn_graph::batching::fixed_size_batches(&graph.events()[..120], 17);
        let report = engine.run_batches(&batches, &graph);
        assert_eq!(report.batch_latencies.len(), batches.len());
        assert_eq!(report.num_events, 120);
    }
}
