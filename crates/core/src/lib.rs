//! Memory-based Temporal GNN (TGN-attn) inference and training — the model
//! side of the paper's model-architecture co-design.
//!
//! The crate implements the full inference pipeline of Algorithm 1 (update
//! vertex memory from cached messages, cache new messages, compute output
//! embeddings, update the neighbor table) for the baseline TGN-attn model and
//! for every optimization ladder rung evaluated in Table II:
//!
//! | Variant | Attention | Time encoder | Neighbor budget |
//! |---|---|---|---|
//! | `Baseline` | vanilla (Eq. 11–15) | cos (Eq. 6) | 10 |
//! | `+SAT` | simplified (Eq. 16) | cos | 10 |
//! | `+LUT` | simplified | 128-entry LUT | 10 |
//! | `+NP(L/M/S)` | simplified | LUT | 6 / 4 / 2 |
//!
//! Modules:
//! * [`config`] — model hyper-parameters and the optimization-variant ladder.
//! * [`memory`] — the node memory table, the mailbox of cached messages, and
//!   the message construction of Eq. 4–5.
//! * [`model`] — the neural model (GRU memory updater + attention aggregator
//!   + feature transformation) with forward and backward passes.
//! * [`inference`] — the batch inference engine (Algorithm 1) with per-stage
//!   profiling and operation counting.
//! * [`stages`] — the stage-level building blocks (sampled batch, memory
//!   stage, owned GNN jobs) shared by the engine and the `tgnn-serve`
//!   streaming pipeline.
//! * [`sharded`] — the vertex-partitioned node memory with per-shard locks
//!   and epoch-barrier commits.
//! * [`complexity`] — MAC / memory-access accounting (Tables I and II).
//! * [`profiling`] — wall-clock stage breakdown (Table I).
//! * [`quantized`] — the int8 fixed-point execution path: activation-range
//!   calibration against the f32 engine, quantized weight sets
//!   ([`QuantizedTgn`]), and `ExecMode::Quantized`.
//! * [`link_prediction`] — the self-supervised temporal link-prediction task,
//!   decoder and Average Precision metric.
//! * [`training`] — self-supervised training loop.
//! * [`distillation`] — knowledge-distillation training of the simplified
//!   students against a vanilla-attention teacher (Eq. 17).
//! * [`apan`] — an APAN-style asynchronous, mailbox-only baseline used for
//!   the accuracy/latency comparison of Fig. 7.
//! * [`tenancy`] — multi-tenant vocabulary shared with `tgnn-serve`:
//!   [`TenantId`], [`OverloadPolicy`], and the per-result deadline
//!   [`Disposition`] metadata.
//! * [`backend`] — pluggable compute backends over the stage entry points:
//!   [`BackendKind`], the [`ComputeBackend`] trait, and the [`F32Backend`] /
//!   [`Int8Backend`] implementations (the modeled `HwSimBackend` lives in
//!   `tgnn-hwsim`).

pub mod apan;
pub mod backend;
pub mod complexity;
pub mod config;
pub mod distillation;
pub mod inference;
pub mod link_prediction;
pub mod memory;
pub mod model;
pub mod profiling;
pub mod quantized;
pub mod sharded;
pub mod stages;
pub mod tenancy;
pub mod training;

pub use backend::{
    BackendKind, ComputeBackend, F32Backend, GnnStageOutput, Int8Backend, NUM_BACKEND_KINDS,
};
pub use complexity::{OpCounts, StageOps};
pub use config::{AttentionKind, ModelConfig, OptimizationVariant, TimeEncoderKind};
pub use inference::{ExecMode, InferenceEngine, InferenceReport};
pub use link_prediction::LinkDecoder;
pub use memory::{Message, NodeMemory};
pub use model::TgnModel;
pub use profiling::{Stage, StageTimings};
pub use quantized::{calibrate_activations, quantize_model, QuantizedTgn};
pub use sharded::ShardedMemory;
pub use stages::{GnnJobBatch, SampledBatch};
pub use tenancy::{Disposition, OverloadPolicy, ResultMeta, TenantId};
pub use training::{TrainConfig, Trainer};
