//! Knowledge distillation of the simplified students from the
//! vanilla-attention teacher (Section III-A, Eq. 17).
//!
//! The student model (simplified attention, optionally LUT time encoder and
//! neighbor pruning) is initialised with the teacher's shared modules (GRU,
//! time encoder, node projection, FTM), trained with the usual
//! self-supervised link-prediction loss, and additionally supervised with a
//! soft cross-entropy between its attention logits `a + W_t·Δt` and the
//! teacher's attention logits, scaled by a temperature `T`.

use crate::config::ModelConfig;
use crate::model::TgnModel;
use crate::training::{train_step, StreamState, TrainConfig, TrainedModel, Trainer};
use serde::{Deserialize, Serialize};
use tgnn_graph::{EventBatch, TemporalGraph};
use tgnn_nn::loss::distillation_loss;
use tgnn_nn::optim::Adam;
use tgnn_tensor::{Float, Matrix, TensorRng};

/// Distillation hyper-parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DistillationConfig {
    /// Softmax temperature `T` in Eq. 17 (the paper uses 1).
    pub temperature: Float,
    /// Weight of the distillation term relative to the task loss.
    pub kd_weight: Float,
    /// Underlying self-supervised training schedule.
    pub train: TrainConfig,
}

impl Default for DistillationConfig {
    fn default() -> Self {
        Self {
            temperature: 1.0,
            kd_weight: 0.5,
            train: TrainConfig::default(),
        }
    }
}

/// Statistics of one distillation run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DistillationStats {
    /// Mean task (BCE) loss per epoch.
    pub task_loss: Vec<Float>,
    /// Mean distillation loss per epoch.
    pub kd_loss: Vec<Float>,
}

/// Trains a student of the given configuration against a trained teacher.
///
/// The returned bundle contains the student model, a decoder fine-tuned for
/// it, and the per-epoch loss history.
pub fn distill(
    teacher: &TrainedModel,
    student_config: &ModelConfig,
    graph: &TemporalGraph,
    config: &DistillationConfig,
) -> (TrainedModel, DistillationStats) {
    assert!(
        config.temperature > 0.0,
        "distill: temperature must be positive"
    );
    let mut rng = TensorRng::new(config.train.seed ^ 0xd157);

    let mut student = TgnModel::new(student_config.clone(), &mut rng);
    student.init_from_teacher(&teacher.model);
    if student.config.time_encoder == crate::config::TimeEncoderKind::Lut {
        let deltas = tgnn_data::delta_t::memory_delta_t(graph.events(), graph.num_nodes());
        student.calibrate_lut(&deltas);
    }
    // The decoder starts from the teacher's decoder so the student only has
    // to adapt, not relearn, the ranking head.
    let mut decoder = teacher.decoder.clone();

    let mut optimizer = Adam::new(config.train.learning_rate);
    let mut task_history = Vec::new();
    let mut kd_history = Vec::new();
    let mut history = Vec::new();

    for epoch in 0..config.train.epochs {
        let mut state = StreamState::new(graph.num_nodes(), &student.config);
        let mut task_total = 0.0;
        let mut kd_total = 0.0;
        let mut batches = 0usize;

        for chunk in graph.train_events().chunks(config.train.batch_size) {
            let batch = EventBatch::new(chunk.to_vec());
            let examples = state.prepare_examples(&batch, graph, &student, &mut rng);
            if !examples.is_empty() {
                // Task loss + gradients (also steps the optimizer).
                let task_loss = train_step(&mut student, &mut decoder, &examples, &mut optimizer);

                // Distillation loss on the attention logits; gradients are
                // accumulated into the student's attention parameters and
                // applied with a separate optimizer step.
                let kd_loss = distillation_step(
                    &teacher.model,
                    &mut student,
                    &examples,
                    config,
                    &mut optimizer,
                );
                task_total += task_loss;
                kd_total += kd_loss;
                batches += 1;
            }
            state.commit(&batch, graph, &student);
        }

        let denom = batches.max(1) as Float;
        task_history.push(task_total / denom);
        kd_history.push(kd_total / denom);
        history.push(crate::training::EpochStats {
            epoch,
            mean_loss: task_total / denom,
            batches,
        });
    }

    (
        TrainedModel {
            model: student,
            decoder,
            history,
        },
        DistillationStats {
            task_loss: task_history,
            kd_loss: kd_history,
        },
    )
}

/// Convenience wrapper: trains the teacher from scratch, then distils every
/// student rung, returning `(teacher, students)` in ladder order.
pub fn train_teacher_and_students(
    teacher_config: &ModelConfig,
    student_configs: &[ModelConfig],
    graph: &TemporalGraph,
    config: &DistillationConfig,
) -> (TrainedModel, Vec<TrainedModel>) {
    let trainer = Trainer::new(config.train.clone());
    let teacher = trainer.train(teacher_config, graph);
    let students = student_configs
        .iter()
        .map(|cfg| distill(&teacher, cfg, graph, config).0)
        .collect();
    (teacher, students)
}

/// Accumulates the KD gradient over a batch of examples and applies one
/// optimizer step to the student's attention parameters.  Returns the mean
/// KD loss.
fn distillation_step(
    teacher: &TgnModel,
    student: &mut TgnModel,
    examples: &[crate::training::TrainingExample],
    config: &DistillationConfig,
    optimizer: &mut Adam,
) -> Float {
    let mut total = 0.0;
    let mut count = 0usize;

    for ex in examples {
        for inputs in [&ex.src, &ex.dst] {
            if inputs.neighbors.len() < 2 {
                continue;
            }
            // Teacher logits over the same neighbor contexts.
            let teacher_out = teacher.compute_embedding(
                &teacher_memory_of(teacher, inputs),
                node_feature_option(teacher, inputs),
                &inputs.neighbors,
            );
            let teacher_logits = teacher_out.attention_logits;

            // Student logits from the simplified attention (present slots).
            let (slots, student_logits) = {
                let Some(sat) = student.simplified.as_ref() else {
                    continue;
                };
                let dts: Vec<Float> = inputs.neighbors.iter().map(|c| c.delta_t).collect();
                let full = sat.logits(&dts);
                (sat.slots(), full[..dts.len()].to_vec())
            };
            if student_logits.len() != teacher_logits.len() {
                continue;
            }

            let (loss, grad) =
                distillation_loss(&student_logits, &teacher_logits, config.temperature);
            total += loss;
            count += 1;

            // logit_j = a_j + Σ_m W_t[j, m] * (Δt_m / time_scale): accumulate
            // the weighted gradients directly.
            let time_scale = student.config.time_scale;
            let mut scaled = vec![0.0; slots];
            for (i, ctx) in inputs.neighbors.iter().enumerate() {
                scaled[i] = ctx.delta_t / time_scale;
            }
            let mut d_a = Matrix::zeros(1, slots);
            let mut d_wt = Matrix::zeros(slots, slots);
            for (j, &g) in grad.iter().enumerate() {
                let g = g * config.kd_weight;
                d_a[(0, j)] += g;
                for m in 0..slots {
                    d_wt[(j, m)] += g * scaled[m];
                }
            }
            let sat = student.simplified.as_mut().unwrap();
            sat.a.accumulate(&d_a);
            sat.w_t.accumulate(&d_wt);
        }
    }

    if count > 0 {
        if let Some(sat) = student.simplified.as_mut() {
            optimizer.step(&mut [&mut sat.a, &mut sat.w_t]);
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as Float
    }
}

fn teacher_memory_of(teacher: &TgnModel, inputs: &crate::training::VertexInputs) -> Vec<Float> {
    if inputs.message.is_empty() {
        inputs.prev_memory.clone()
    } else {
        // The teacher and student share the GRU (init_from_teacher), so the
        // teacher's updated memory is recomputed from the same inputs.
        let messages = Matrix::row_vector(&inputs.message);
        let memories = Matrix::row_vector(&inputs.prev_memory);
        teacher.update_memory(&messages, &memories).row_to_vec(0)
    }
}

fn node_feature_option<'a>(
    model: &TgnModel,
    inputs: &'a crate::training::VertexInputs,
) -> Option<&'a [Float]> {
    if model.config.node_feature_dim > 0 {
        Some(inputs.node_feature.as_slice())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptimizationVariant;
    use tgnn_data::{generate, tiny};

    fn quick_config() -> DistillationConfig {
        DistillationConfig {
            temperature: 1.0,
            kd_weight: 0.5,
            train: TrainConfig {
                epochs: 2,
                batch_size: 40,
                learning_rate: 5e-3,
                decoder_hidden: 16,
                seed: 5,
            },
        }
    }

    #[test]
    fn distillation_produces_student_with_shared_modules() {
        let graph = generate(&tiny(51));
        let teacher_cfg = ModelConfig::tiny(graph.node_feature_dim(), graph.edge_feature_dim());
        let trainer = Trainer::new(quick_config().train);
        let teacher = trainer.train(&teacher_cfg, &graph);

        let student_cfg = teacher_cfg.clone().with_variant(OptimizationVariant::Sat);
        let (student, stats) = distill(&teacher, &student_cfg, &graph, &quick_config());
        assert!(student.model.simplified.is_some());
        assert_eq!(stats.task_loss.len(), 2);
        assert_eq!(stats.kd_loss.len(), 2);
        assert!(stats.kd_loss.iter().all(|l| l.is_finite()));
        // KD loss should not be zero — the student is actually being
        // compared against teacher distributions.
        assert!(stats.kd_loss.iter().any(|&l| l > 0.0));
    }

    #[test]
    fn student_accuracy_close_to_teacher() {
        let graph = generate(&tiny(61));
        let teacher_cfg = ModelConfig::tiny(graph.node_feature_dim(), graph.edge_feature_dim());
        let cfg = quick_config();
        let trainer = Trainer::new(cfg.train.clone());
        let teacher = trainer.train(&teacher_cfg, &graph);
        let teacher_ap = trainer.evaluate(&teacher, &graph, 32).average_precision;

        let student_cfg = teacher_cfg
            .clone()
            .with_variant(OptimizationVariant::NpMedium);
        let (student, _) = distill(&teacher, &student_cfg, &graph, &cfg);
        let student_ap = trainer.evaluate(&student, &graph, 32).average_precision;

        // The paper reports ≤0.33% AP loss on real data; on the tiny
        // synthetic trace we only require the student to stay in the same
        // ballpark as the teacher.
        assert!(
            student_ap > teacher_ap - 0.15,
            "student AP {student_ap} collapsed vs teacher {teacher_ap}"
        );
    }
}
