//! The TGN-attn neural model: GRU memory updater, attention aggregator
//! (vanilla or simplified), time encoder (cos or LUT), and output feature
//! transformation.
//!
//! The model is *stateless with respect to the graph*: it owns only learnable
//! parameters.  The persistent vertex state (memory, mailbox, neighbor table)
//! lives in [`crate::memory::NodeMemory`] and `tgnn_graph`, and the
//! [`crate::inference::InferenceEngine`] wires everything together following
//! Algorithm 1.

use crate::config::{AttentionKind, ModelConfig, TimeEncoderKind};
use crate::quantized::{layers, QuantizedTgn};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use tgnn_nn::attention::{SimplifiedCache, VanillaCache};
use tgnn_nn::{
    CosTimeEncoder, GruCell, Linear, LutTimeEncoder, Param, SimplifiedAttention, VanillaAttention,
};
use tgnn_quant::ActivationObserver;
use tgnn_tensor::ops::{softmax, top_k_indices};
use tgnn_tensor::{Float, Matrix, TensorRng, Workspace};

/// Per-neighbor context assembled by the caller (memory snapshot, edge
/// feature, and time difference to the query time).
#[derive(Clone, Debug)]
pub struct NeighborContext {
    /// The neighbor's current memory vector.
    pub memory: Vec<Float>,
    /// Feature of the interaction edge that connects target and neighbor.
    pub edge_feature: Vec<Float>,
    /// Query time minus the interaction timestamp (≥ 0).
    pub delta_t: Float,
}

/// Borrowed per-neighbor context for the batched hot path: the engine points
/// straight into the memory table and the graph's edge-feature storage, so
/// assembling a batch copies nothing.
#[derive(Clone, Copy, Debug)]
pub struct NeighborRef<'a> {
    /// The neighbor's current memory row.
    pub memory: &'a [Float],
    /// Feature of the interaction edge that connects target and neighbor.
    pub edge_feature: &'a [Float],
    /// Query time minus the interaction timestamp (≥ 0).
    pub delta_t: Float,
}

/// One vertex's embedding request within a batched GNN-stage computation.
#[derive(Clone, Copy, Debug)]
pub struct EmbeddingJob<'a> {
    /// The vertex's (already updated) memory `s_i`.
    pub memory: &'a [Float],
    /// Its static feature row (required iff the model has node features).
    pub node_feature: Option<&'a [Float]>,
    /// Sampled temporal neighbor contexts, most recent first.
    pub neighbors: &'a [NeighborRef<'a>],
}

/// Result of computing one vertex embedding.
#[derive(Clone, Debug)]
pub struct EmbeddingOutput {
    /// The output embedding `h_v`.
    pub embedding: Vec<Float>,
    /// Pre-softmax attention logits over the candidate neighbors (used by
    /// knowledge distillation).
    pub attention_logits: Vec<Float>,
    /// Indices of the neighbors that were actually aggregated (after
    /// pruning).
    pub used_neighbors: Vec<usize>,
}

/// Backward cache for one embedding computation.
#[derive(Debug)]
pub struct EmbeddingCache {
    f_prime: Matrix,
    node_feature: Option<Matrix>,
    query_input: Matrix,
    concat_input: Matrix,
    vanilla: Option<VanillaCache>,
    simplified: Option<SimplifiedCache>,
}

/// Accumulates `Σ_j weights[j] · m.row(first_row + j)` into `out`,
/// replicating `tgnn_tensor::ops::weighted_row_sum`'s accumulation order
/// (including its zero-weight skip) over a contiguous row range so batched
/// and per-vertex aggregation are bit-identical.  Shared with the quantized
/// batch path in [`crate::quantized`].
pub(crate) fn weighted_rows_into(
    m: &Matrix,
    first_row: usize,
    weights: &[Float],
    out: &mut [Float],
) {
    out.fill(0.0);
    for (j, &w) in weights.iter().enumerate() {
        if w == 0.0 {
            continue;
        }
        for (a, &x) in out.iter_mut().zip(m.row(first_row + j)) {
            *a += w * x;
        }
    }
}

/// The TGN-attn model with the paper's optimization knobs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TgnModel {
    /// Model configuration.
    pub config: ModelConfig,
    /// GRU memory updater (`UPDT`).
    pub gru: GruCell,
    /// Optional static-node-feature projection `W_s` (Eq. 11).
    pub node_proj: Option<Linear>,
    /// Vanilla attention aggregator (present when
    /// `config.attention == Vanilla`).
    pub vanilla: Option<VanillaAttention>,
    /// Simplified attention aggregator (present when
    /// `config.attention == Simplified`).
    pub simplified: Option<SimplifiedAttention>,
    /// Trigonometric time encoder (always present; also the reference the
    /// LUT is calibrated from).
    pub cos_encoder: CosTimeEncoder,
    /// LUT time encoder (present when `config.time_encoder == Lut` and
    /// calibration has run).
    pub lut_encoder: Option<LutTimeEncoder>,
    /// Output feature transformation (FTM): `[h_agg || f'_i] -> embedding`.
    pub output: Linear,
    /// Attached int8 weight set.  When present, the *batched* entry points
    /// ([`Self::compute_embeddings_batch`], [`Self::update_memory_ws`]) run
    /// on the quantized kernels — which is how both `ExecMode::Quantized`
    /// and the `tgnn-serve` pipeline execute the int8 path without any
    /// caller changes.  The per-vertex reference paths always stay f32.
    pub quantized: Option<Arc<QuantizedTgn>>,
}

impl TgnModel {
    /// Creates a model with freshly initialised weights.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(config: ModelConfig, rng: &mut TensorRng) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid ModelConfig: {e}"));
        let gru = GruCell::new("gru", config.message_dim(), config.memory_dim, rng);
        let node_proj = if config.node_feature_dim > 0 {
            Some(Linear::new(
                "node_proj",
                config.node_feature_dim,
                config.memory_dim,
                rng,
            ))
        } else {
            None
        };
        let vanilla = match config.attention {
            AttentionKind::Vanilla => Some(VanillaAttention::new(
                "attention",
                config.query_input_dim(),
                config.neighbor_input_dim(),
                config.memory_dim,
                config.memory_dim,
                rng,
            )),
            AttentionKind::Simplified => None,
        };
        let simplified = match config.attention {
            AttentionKind::Simplified => Some(SimplifiedAttention::new(
                "sat",
                config.sampled_neighbors,
                config.neighbor_input_dim(),
                config.memory_dim,
                config.time_scale,
                rng,
            )),
            AttentionKind::Vanilla => None,
        };
        let cos_encoder = CosTimeEncoder::new("time", config.time_dim, rng);
        let output = Linear::new("ftm", 2 * config.memory_dim, config.embedding_dim, rng);
        Self {
            config,
            gru,
            node_proj,
            vanilla,
            simplified,
            cos_encoder,
            lut_encoder: None,
            output,
            quantized: None,
        }
    }

    /// Attaches an int8 weight set (see [`crate::quantized`]): from the next
    /// batch on, every batched forward runs on the quantized kernels.
    pub fn attach_quantized(&mut self, q: Arc<QuantizedTgn>) {
        self.quantized = Some(q);
    }

    /// Detaches the int8 weight set, returning the model to pure f32.
    pub fn detach_quantized(&mut self) {
        self.quantized = None;
    }

    /// True when an int8 weight set is attached.
    pub fn is_quantized(&self) -> bool {
        self.quantized.is_some()
    }

    /// Calibrates the LUT time encoder from a sample of Δt values (only
    /// meaningful when `config.time_encoder == Lut`; harmless otherwise).
    pub fn calibrate_lut(&mut self, delta_samples: &[Float]) {
        if delta_samples.is_empty() {
            return;
        }
        self.lut_encoder = Some(LutTimeEncoder::calibrate(
            "time_lut",
            delta_samples,
            self.config.lut_bins,
            &self.cos_encoder,
        ));
    }

    /// True when the model will use the LUT path at inference.
    pub fn uses_lut(&self) -> bool {
        self.config.time_encoder == TimeEncoderKind::Lut && self.lut_encoder.is_some()
    }

    /// Encodes a batch of time deltas with the configured encoder.
    pub fn encode_time(&self, delta_t: &[Float]) -> Matrix {
        if self.uses_lut() {
            self.lut_encoder.as_ref().unwrap().forward(delta_t)
        } else {
            self.cos_encoder.forward(delta_t)
        }
    }

    /// Updates a batch of vertex memories: `messages (B×message_dim)`,
    /// `memories (B×memory_dim)` → new memories.
    pub fn update_memory(&self, messages: &Matrix, memories: &Matrix) -> Matrix {
        self.gru.forward(messages, memories)
    }

    /// Like [`Self::update_memory`] but also returns the GRU cache for
    /// training.
    pub fn update_memory_cached(
        &self,
        messages: &Matrix,
        memories: &Matrix,
    ) -> (Matrix, tgnn_nn::gru::GruCache) {
        self.gru.forward_cached(messages, memories)
    }

    /// Computes the query-side feature `f'_i = s_i + W_s f_i + b_s`
    /// (Eq. 11); without node features this is simply the memory.
    fn f_prime(&self, memory: &[Float], node_feature: Option<&Matrix>) -> Matrix {
        let base = Matrix::row_vector(memory);
        match (&self.node_proj, node_feature) {
            (Some(proj), Some(feat)) => tgnn_tensor::ops::add(&base, &proj.forward(feat)),
            _ => base,
        }
    }

    /// Builds the neighbor-side input matrix `[s_j || e_ij || Φ(Δt_j)]`.
    fn neighbor_inputs(&self, neighbors: &[NeighborContext]) -> (Matrix, Vec<Float>) {
        let n = neighbors.len();
        let dts: Vec<Float> = neighbors.iter().map(|c| c.delta_t).collect();
        if n == 0 {
            return (Matrix::zeros(0, self.config.neighbor_input_dim()), dts);
        }
        let encodings = self.encode_time(&dts);
        let mut input = Matrix::zeros(n, self.config.neighbor_input_dim());
        for (j, ctx) in neighbors.iter().enumerate() {
            assert_eq!(
                ctx.memory.len(),
                self.config.memory_dim,
                "neighbor memory dim mismatch"
            );
            assert_eq!(
                ctx.edge_feature.len(),
                self.config.edge_feature_dim,
                "neighbor edge feature dim mismatch"
            );
            let row = input.row_mut(j);
            let m = self.config.memory_dim;
            let e = self.config.edge_feature_dim;
            row[..m].copy_from_slice(&ctx.memory);
            row[m..m + e].copy_from_slice(&ctx.edge_feature);
            row[m + e..].copy_from_slice(encodings.row(j));
        }
        (input, dts)
    }

    /// Computes the embedding of one target vertex.
    ///
    /// * `memory` — the vertex's (already updated) memory `s_i`.
    /// * `node_feature` — its static feature row (required iff the model was
    ///   built with node features).
    /// * `neighbors` — the sampled temporal neighbor contexts, most recent
    ///   first, at most `config.sampled_neighbors` entries.
    pub fn compute_embedding(
        &self,
        memory: &[Float],
        node_feature: Option<&[Float]>,
        neighbors: &[NeighborContext],
    ) -> EmbeddingOutput {
        self.compute_embedding_cached(memory, node_feature, neighbors)
            .0
    }

    /// [`Self::compute_embedding`] plus the cache needed for
    /// [`Self::backward_embedding`].
    ///
    /// # Panics
    /// Panics on dimension mismatches or when more than
    /// `config.sampled_neighbors` neighbors are supplied.
    pub fn compute_embedding_cached(
        &self,
        memory: &[Float],
        node_feature: Option<&[Float]>,
        neighbors: &[NeighborContext],
    ) -> (EmbeddingOutput, EmbeddingCache) {
        assert_eq!(
            memory.len(),
            self.config.memory_dim,
            "target memory dim mismatch"
        );
        assert!(
            neighbors.len() <= self.config.sampled_neighbors,
            "more neighbors than the sampling budget"
        );
        let node_feature_matrix = node_feature.map(Matrix::row_vector);
        if self.node_proj.is_some() {
            assert!(
                node_feature_matrix.is_some(),
                "model expects node features but none were supplied"
            );
        }

        let f_prime = self.f_prime(memory, node_feature_matrix.as_ref());
        let (neighbor_input, dts) = self.neighbor_inputs(neighbors);

        let (agg, logits, used, vanilla_cache, simplified_cache) = match self.config.attention {
            AttentionKind::Vanilla => {
                let att = self.vanilla.as_ref().expect("vanilla attention missing");
                let zero_enc = self.encode_time(&[0.0]);
                let query_input = f_prime.hconcat(&zero_enc);
                let (out, cache) = att.forward_cached(&query_input, &neighbor_input);
                (
                    out.output,
                    out.logits,
                    out.selected,
                    Some((query_input, cache)),
                    None,
                )
            }
            AttentionKind::Simplified => {
                let att = self
                    .simplified
                    .as_ref()
                    .expect("simplified attention missing");
                let budget = self.config.neighbor_budget;
                let (out, cache) = att.forward_cached(&dts, &neighbor_input, budget);
                (out.output, out.logits, out.selected, None, Some(cache))
            }
        };

        // FTM: embedding = W_out [agg || f'_i] + b_out.
        let agg_row = Matrix::row_vector(&agg);
        let concat_input = agg_row.hconcat(&f_prime);
        let embedding = self.output.forward(&concat_input).row_to_vec(0);

        let (query_input, vanilla_cache) = match vanilla_cache {
            Some((qi, c)) => (qi, Some(c)),
            None => (Matrix::zeros(1, self.config.query_input_dim()), None),
        };

        let output = EmbeddingOutput {
            embedding,
            attention_logits: logits,
            used_neighbors: used,
        };
        let cache = EmbeddingCache {
            f_prime,
            node_feature: node_feature_matrix,
            query_input,
            concat_input,
            vanilla: vanilla_cache,
            simplified: simplified_cache,
        };
        (output, cache)
    }

    /// Encodes a batch of time deltas into a pre-sized output matrix
    /// (allocation-free [`Self::encode_time`]).
    pub fn encode_time_into(&self, delta_t: &[Float], out: &mut Matrix) {
        if self.uses_lut() {
            self.lut_encoder
                .as_ref()
                .unwrap()
                .forward_into(delta_t, out);
        } else {
            self.cos_encoder.forward_into(delta_t, out);
        }
    }

    /// Allocation-free [`Self::update_memory`] on workspace buffers and the
    /// packed GEMM (bit-identical results to [`Self::update_memory`] while
    /// f32; recycle the returned matrix).  With a quantized weight set
    /// attached whose configuration quantizes the GRU, the gate projections
    /// run on the int8 kernels instead.
    pub fn update_memory_ws(
        &self,
        messages: &Matrix,
        memories: &Matrix,
        ws: &mut Workspace,
    ) -> Matrix {
        if let Some(qgru) = self.quantized.as_ref().and_then(|q| q.gru()) {
            return qgru.forward_ws(messages, memories, ws);
        }
        self.gru.forward_ws(messages, memories, ws)
    }

    /// Computes the embeddings of a whole batch of vertices at once — the
    /// GNN-stage hot path.
    ///
    /// Where the per-vertex [`Self::compute_embedding`] issues one small GEMM
    /// per projection per vertex, this batches all vertices' query / key /
    /// value projections and the output feature transformation into **one
    /// GEMM per weight matrix per batch** on the packed kernel, with every
    /// temporary taken from the workspace.  Per-row arithmetic is identical
    /// to the per-vertex path, so results are bit-for-bit the same — the
    /// engine's mode-equivalence tests rely on this.
    ///
    /// **Implementation note:** the attention math here deliberately inlines
    /// (rather than calls) the aggregators' per-vertex forward passes —
    /// batching all vertices into shared GEMMs is the whole point.  The
    /// arithmetic therefore lives in three places: `tgnn_nn::attention`'s
    /// `forward`/`forward_cached` (reference + training), its `forward_ws`
    /// (allocation-free single-vertex serving), and this batch path.  If you
    /// change any of it (scale factor, logit formula, top-k tie-breaking,
    /// weighted-sum skip), change all three; the attention `forward_ws`
    /// bitwise tests, the `batched_embeddings_are_bitwise_identical_to_per_vertex`
    /// test, and the engine's mode-equivalence test pin them together and
    /// will fail on any divergence.
    ///
    /// # Panics
    /// Panics on dimension mismatches or when a job exceeds
    /// `config.sampled_neighbors`.
    pub fn compute_embeddings_batch(
        &self,
        jobs: &[EmbeddingJob<'_>],
        ws: &mut Workspace,
    ) -> Vec<EmbeddingOutput> {
        if let Some(q) = &self.quantized {
            return q.compute_embeddings_batch(self, jobs, ws);
        }
        self.compute_embeddings_batch_obs(jobs, ws, None)
    }

    /// The f32 batched GNN stage with an optional activation observer — the
    /// calibration pass of [`crate::quantized`] attaches a recorder here to
    /// capture the input range of every projection that will be quantized.
    /// With `obs = None` this *is* [`Self::compute_embeddings_batch`]'s f32
    /// body (the quantized dispatch never reaches it).
    pub fn compute_embeddings_batch_obs(
        &self,
        jobs: &[EmbeddingJob<'_>],
        ws: &mut Workspace,
        mut obs: Option<&mut dyn ActivationObserver>,
    ) -> Vec<EmbeddingOutput> {
        let t = jobs.len();
        if t == 0 {
            return Vec::new();
        }
        let cfg = &self.config;
        let mem_dim = cfg.memory_dim;
        let nbr_in = cfg.neighbor_input_dim();

        // --- f'_i = s_i (+ W_s f_i + b_s) for every target.
        let mut f_prime = ws.take_matrix(t, mem_dim);
        for (i, job) in jobs.iter().enumerate() {
            assert_eq!(job.memory.len(), mem_dim, "target memory dim mismatch");
            assert!(
                job.neighbors.len() <= cfg.sampled_neighbors,
                "more neighbors than the sampling budget"
            );
            f_prime.row_mut(i).copy_from_slice(job.memory);
        }
        if let Some(proj) = &self.node_proj {
            let mut features = ws.take_matrix(t, cfg.node_feature_dim);
            for (i, job) in jobs.iter().enumerate() {
                let feat = job
                    .node_feature
                    .expect("model expects node features but none were supplied");
                features.row_mut(i).copy_from_slice(feat);
            }
            if let Some(o) = obs.as_deref_mut() {
                o.record(layers::NODE_PROJ_INPUT, features.as_slice());
            }
            let projected = proj.forward_ws(&features, ws);
            for (a, &b) in f_prime.as_mut_slice().iter_mut().zip(projected.as_slice()) {
                *a += b;
            }
            ws.recycle_matrix(projected);
            ws.recycle_matrix(features);
        }

        // --- Stacked neighbor inputs `[s_j || e_ij || Φ(Δt_j)]` for all
        // targets, each target's rows contiguous.
        let total_n: usize = jobs.iter().map(|j| j.neighbors.len()).sum();
        let mut offsets = Vec::with_capacity(t);
        let mut nbr_input = ws.take_matrix(total_n, nbr_in);
        let mut dts_all = ws.take(total_n);
        {
            let mut row = 0;
            for job in jobs {
                offsets.push(row);
                for ctx in job.neighbors {
                    assert_eq!(ctx.memory.len(), mem_dim, "neighbor memory dim mismatch");
                    assert_eq!(
                        ctx.edge_feature.len(),
                        cfg.edge_feature_dim,
                        "neighbor edge feature dim mismatch"
                    );
                    let dst = nbr_input.row_mut(row);
                    dst[..mem_dim].copy_from_slice(ctx.memory);
                    dst[mem_dim..mem_dim + cfg.edge_feature_dim].copy_from_slice(ctx.edge_feature);
                    dts_all[row] = ctx.delta_t;
                    row += 1;
                }
            }
        }
        if total_n > 0 {
            let mut enc = ws.take_matrix(total_n, cfg.time_dim);
            self.encode_time_into(&dts_all, &mut enc);
            for row in 0..total_n {
                nbr_input.row_mut(row)[mem_dim + cfg.edge_feature_dim..]
                    .copy_from_slice(enc.row(row));
            }
            ws.recycle_matrix(enc);
        }
        if let Some(o) = obs.as_deref_mut() {
            o.record(layers::ATTN_NEIGHBOR, nbr_input.as_slice());
        }

        // --- Aggregate per attention kind into `agg` (T×mem).
        let mut agg = ws.take_matrix(t, mem_dim);
        let mut logits_out: Vec<Vec<Float>> = Vec::with_capacity(t);
        let mut selected_out: Vec<Vec<usize>> = Vec::with_capacity(t);
        match cfg.attention {
            AttentionKind::Vanilla => {
                let att = self.vanilla.as_ref().expect("vanilla attention missing");
                // Query inputs `[f'_i || Φ(0)]`, one W_q GEMM for the batch.
                let mut zero_enc = ws.take_matrix(1, cfg.time_dim);
                self.encode_time_into(&[0.0], &mut zero_enc);
                let mut query_input = ws.take_matrix(t, cfg.query_input_dim());
                for i in 0..t {
                    let dst = query_input.row_mut(i);
                    dst[..mem_dim].copy_from_slice(f_prime.row(i));
                    dst[mem_dim..].copy_from_slice(zero_enc.row(0));
                }
                if let Some(o) = obs.as_deref_mut() {
                    o.record(layers::ATTN_QUERY, query_input.as_slice());
                }
                let q_all = att.w_q.forward_ws(&query_input, ws);
                // One W_k / W_v GEMM over all targets' neighbors.
                let k_all = att.w_k.forward_ws(&nbr_input, ws);
                let v_all = att.w_v.forward_ws(&nbr_input, ws);
                for (i, job) in jobs.iter().enumerate() {
                    let n = job.neighbors.len();
                    if n == 0 {
                        logits_out.push(Vec::new());
                        selected_out.push(Vec::new());
                        continue;
                    }
                    let off = offsets[i];
                    let scale = 1.0 / (n as Float).sqrt();
                    let logits: Vec<Float> = (0..n)
                        .map(|j| tgnn_tensor::gemm::dot(q_all.row(i), k_all.row(off + j)) * scale)
                        .collect();
                    let weights = softmax(&logits);
                    weighted_rows_into(&v_all, off, &weights, agg.row_mut(i));
                    logits_out.push(logits);
                    selected_out.push((0..n).collect());
                }
                ws.recycle_matrix(v_all);
                ws.recycle_matrix(k_all);
                ws.recycle_matrix(q_all);
                ws.recycle_matrix(query_input);
                ws.recycle_matrix(zero_enc);
            }
            AttentionKind::Simplified => {
                let att = self
                    .simplified
                    .as_ref()
                    .expect("simplified attention missing");
                let budget = cfg.neighbor_budget;
                let slots = att.slots();
                // Per-vertex logits and top-k selection (tiny `slots×slots`
                // work), then one stacked W_v GEMM over all selected rows.
                let mut scaled = ws.take(slots);
                let mut offsets_buf = ws.take(slots);
                let mut weights_out: Vec<Vec<Float>> = Vec::with_capacity(t);
                let mut total_selected = 0usize;
                for job in jobs {
                    let n = job.neighbors.len();
                    scaled.iter_mut().for_each(|x| *x = 0.0);
                    for (slot, ctx) in scaled.iter_mut().zip(job.neighbors) {
                        *slot = ctx.delta_t / att.time_scale();
                    }
                    tgnn_tensor::gemm::matvec_into(&att.w_t.value, &scaled, &mut offsets_buf);
                    let logits: Vec<Float> = (0..n)
                        .map(|j| att.a.value[(0, j)] + offsets_buf[j])
                        .collect();
                    let selected = top_k_indices(&logits, budget.min(n));
                    let selected_logits: Vec<Float> = selected.iter().map(|&j| logits[j]).collect();
                    let weights = softmax(&selected_logits);
                    total_selected += selected.len();
                    logits_out.push(logits);
                    selected_out.push(selected);
                    weights_out.push(weights);
                }
                ws.recycle(offsets_buf);
                ws.recycle(scaled);

                let mut sel_input = ws.take_matrix(total_selected, nbr_in);
                {
                    let mut row = 0;
                    for (i, selected) in selected_out.iter().enumerate() {
                        for &j in selected {
                            sel_input
                                .row_mut(row)
                                .copy_from_slice(nbr_input.row(offsets[i] + j));
                            row += 1;
                        }
                    }
                }
                let v_sel = att.w_v.forward_ws(&sel_input, ws);
                let mut row = 0;
                for (i, weights) in weights_out.iter().enumerate() {
                    weighted_rows_into(&v_sel, row, weights, agg.row_mut(i));
                    row += weights.len();
                }
                ws.recycle_matrix(v_sel);
                ws.recycle_matrix(sel_input);
            }
        }

        // --- FTM: one GEMM over `[h_agg || f'_i]` for the whole batch.
        let mut concat = ws.take_matrix(t, 2 * mem_dim);
        for i in 0..t {
            let dst = concat.row_mut(i);
            dst[..mem_dim].copy_from_slice(agg.row(i));
            dst[mem_dim..].copy_from_slice(f_prime.row(i));
        }
        if let Some(o) = obs {
            o.record(layers::FTM_INPUT, concat.as_slice());
        }
        let out_mat = self.output.forward_ws(&concat, ws);

        let mut outputs = Vec::with_capacity(t);
        for (i, (logits, selected)) in logits_out.into_iter().zip(selected_out).enumerate() {
            outputs.push(EmbeddingOutput {
                embedding: out_mat.row_to_vec(i),
                attention_logits: logits,
                used_neighbors: selected,
            });
        }

        ws.recycle_matrix(out_mat);
        ws.recycle_matrix(concat);
        ws.recycle_matrix(agg);
        ws.recycle(dts_all);
        ws.recycle_matrix(nbr_input);
        ws.recycle_matrix(f_prime);
        outputs
    }

    /// Backward pass of one embedding computation.  Accumulates gradients in
    /// the attention, FTM, and node-projection parameters, and returns the
    /// gradient with respect to the target vertex's memory `s_i` (to be fed
    /// into the GRU backward pass).  Neighbor memories are treated as
    /// constants, following the standard TGN training protocol where
    /// gradients do not flow across the memory table.
    pub fn backward_embedding(
        &mut self,
        cache: &EmbeddingCache,
        grad_embedding: &[Float],
    ) -> Vec<Float> {
        let mem_dim = self.config.memory_dim;
        // FTM backward.
        let grad_concat = self
            .output
            .backward(&cache.concat_input, &Matrix::row_vector(grad_embedding));
        let grad_agg: Vec<Float> = grad_concat.row(0)[..mem_dim].to_vec();
        let mut grad_f_prime: Vec<Float> = grad_concat.row(0)[mem_dim..].to_vec();

        // Attention backward.
        match self.config.attention {
            AttentionKind::Vanilla => {
                if let (Some(att), Some(vcache)) = (self.vanilla.as_mut(), cache.vanilla.as_ref()) {
                    let (grad_query, _grad_neighbors) = att.backward(vcache, &grad_agg);
                    // query_input = [f'_i || Φ(0)]; the time-encoding half is
                    // not trained through this path.
                    for (g, &gq) in grad_f_prime
                        .iter_mut()
                        .zip(grad_query.row(0)[..mem_dim].iter())
                    {
                        *g += gq;
                    }
                }
            }
            AttentionKind::Simplified => {
                if let (Some(att), Some(scache)) =
                    (self.simplified.as_mut(), cache.simplified.as_ref())
                {
                    let _grad_neighbors = att.backward(scache, &grad_agg);
                }
            }
        }

        // f'_i = s_i (+ W_s f_i): gradient w.r.t. s_i is grad_f_prime; the
        // node projection receives the same upstream gradient.
        if let (Some(proj), Some(feat)) = (self.node_proj.as_mut(), cache.node_feature.as_ref()) {
            let _ = proj.backward(feat, &Matrix::row_vector(&grad_f_prime));
        }
        let _ = &cache.f_prime;
        let _ = &cache.query_input;
        grad_f_prime
    }

    /// All learnable parameters (used by the optimizer).  The cos time
    /// encoder's ω/φ and the LUT table are included so they can be trained or
    /// distilled when an experiment requires it.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = Vec::new();
        out.extend(self.gru.params_mut());
        if let Some(p) = self.node_proj.as_mut() {
            out.extend(p.params_mut());
        }
        if let Some(a) = self.vanilla.as_mut() {
            out.extend(a.params_mut());
        }
        if let Some(a) = self.simplified.as_mut() {
            out.extend(a.params_mut());
        }
        out.extend(self.cos_encoder.params_mut());
        if let Some(l) = self.lut_encoder.as_mut() {
            out.extend(l.params_mut());
        }
        out.extend(self.output.params_mut());
        out
    }

    /// Immutable parameter access (for counting and serialization checks).
    pub fn params(&self) -> Vec<&Param> {
        let mut out = Vec::new();
        out.extend(self.gru.params());
        if let Some(p) = self.node_proj.as_ref() {
            out.extend(p.params());
        }
        if let Some(a) = self.vanilla.as_ref() {
            out.extend(a.params());
        }
        if let Some(a) = self.simplified.as_ref() {
            out.extend(a.params());
        }
        out.extend(self.cos_encoder.params());
        if let Some(l) = self.lut_encoder.as_ref() {
            out.extend(l.params());
        }
        out.extend(self.output.params());
        out
    }

    /// Total number of scalar parameters.
    pub fn num_parameters(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Transfers the GRU, time encoder, node projection and FTM weights from
    /// a teacher model — the starting point of the knowledge-distillation
    /// setup, which only needs to learn the simplified-attention parameters
    /// from scratch.
    pub fn init_from_teacher(&mut self, teacher: &TgnModel) {
        assert_eq!(
            self.config.message_dim(),
            teacher.config.message_dim(),
            "init_from_teacher: incompatible message dimensions"
        );
        assert_eq!(
            self.config.memory_dim, teacher.config.memory_dim,
            "init_from_teacher: incompatible memory dimensions"
        );
        self.gru = teacher.gru.clone();
        self.cos_encoder = teacher.cos_encoder.clone();
        self.node_proj = teacher.node_proj.clone();
        self.output = teacher.output.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptimizationVariant;
    use tgnn_tensor::approx_eq;

    fn tiny_neighbors(rng: &mut TensorRng, n: usize, cfg: &ModelConfig) -> Vec<NeighborContext> {
        (0..n)
            .map(|i| NeighborContext {
                memory: rng.uniform_vec(cfg.memory_dim, -1.0, 1.0),
                edge_feature: rng.uniform_vec(cfg.edge_feature_dim, -1.0, 1.0),
                delta_t: 10.0 * (i as Float + 1.0),
            })
            .collect()
    }

    #[test]
    fn builds_every_variant_and_counts_parameters() {
        let mut rng = TensorRng::new(0);
        for variant in OptimizationVariant::ladder() {
            let cfg = ModelConfig::tiny(0, 4).with_variant(variant);
            let model = TgnModel::new(cfg, &mut rng);
            assert!(model.num_parameters() > 0, "{variant:?}");
            match variant.attention() {
                AttentionKind::Vanilla => assert!(model.vanilla.is_some()),
                AttentionKind::Simplified => assert!(model.simplified.is_some()),
            }
        }
    }

    #[test]
    fn embedding_has_configured_dimension_and_is_finite() {
        let mut rng = TensorRng::new(1);
        let cfg = ModelConfig::tiny(0, 4);
        let model = TgnModel::new(cfg.clone(), &mut rng);
        let memory = rng.uniform_vec(cfg.memory_dim, -1.0, 1.0);
        let neighbors = tiny_neighbors(&mut rng, 3, &cfg);
        let out = model.compute_embedding(&memory, None, &neighbors);
        assert_eq!(out.embedding.len(), cfg.embedding_dim);
        assert!(out.embedding.iter().all(|x| x.is_finite()));
        assert_eq!(out.attention_logits.len(), 3);
        assert_eq!(out.used_neighbors.len(), 3);
    }

    #[test]
    fn embedding_without_neighbors_still_works() {
        let mut rng = TensorRng::new(2);
        let cfg = ModelConfig::tiny(0, 4);
        let model = TgnModel::new(cfg.clone(), &mut rng);
        let memory = rng.uniform_vec(cfg.memory_dim, -1.0, 1.0);
        let out = model.compute_embedding(&memory, None, &[]);
        assert_eq!(out.embedding.len(), cfg.embedding_dim);
        assert!(out.used_neighbors.is_empty());
    }

    #[test]
    fn node_features_are_required_when_configured() {
        let mut rng = TensorRng::new(3);
        let cfg = ModelConfig::tiny(5, 0);
        let model = TgnModel::new(cfg.clone(), &mut rng);
        let memory = rng.uniform_vec(cfg.memory_dim, -1.0, 1.0);
        let feat = rng.uniform_vec(5, -1.0, 1.0);
        let out = model.compute_embedding(&memory, Some(&feat), &[]);
        assert_eq!(out.embedding.len(), cfg.embedding_dim);
    }

    #[test]
    #[should_panic(expected = "expects node features")]
    fn missing_node_features_panic() {
        let mut rng = TensorRng::new(4);
        let cfg = ModelConfig::tiny(5, 0);
        let model = TgnModel::new(cfg.clone(), &mut rng);
        let memory = vec![0.0; cfg.memory_dim];
        let _ = model.compute_embedding(&memory, None, &[]);
    }

    #[test]
    fn pruning_budget_limits_used_neighbors() {
        let mut rng = TensorRng::new(5);
        let cfg = ModelConfig::tiny(0, 4).with_variant(OptimizationVariant::NpSmall);
        let model = TgnModel::new(cfg.clone(), &mut rng);
        let memory = rng.uniform_vec(cfg.memory_dim, -1.0, 1.0);
        let neighbors = tiny_neighbors(&mut rng, 4, &cfg);
        let out = model.compute_embedding(&memory, None, &neighbors);
        assert_eq!(
            out.used_neighbors.len(),
            2,
            "NP(S) must aggregate exactly 2 neighbors"
        );
        assert_eq!(out.attention_logits.len(), 4);
    }

    #[test]
    fn lut_calibration_changes_the_time_path_only_moderately() {
        let mut rng = TensorRng::new(6);
        let cfg = ModelConfig::tiny(0, 4).with_variant(OptimizationVariant::SatLut);
        let mut model = TgnModel::new(cfg.clone(), &mut rng);
        assert!(!model.uses_lut());
        let samples: Vec<Float> = (0..2000).map(|_| rng.pareto(1.0, 1.3).min(1e5)).collect();
        model.calibrate_lut(&samples);
        assert!(model.uses_lut());

        // The LUT encoder approximates the cos encoder, so embeddings should
        // stay close for in-distribution Δt.
        let memory = rng.uniform_vec(cfg.memory_dim, -0.5, 0.5);
        let neighbors: Vec<NeighborContext> = (0..3)
            .map(|i| NeighborContext {
                memory: rng.uniform_vec(cfg.memory_dim, -0.5, 0.5),
                edge_feature: rng.uniform_vec(cfg.edge_feature_dim, -0.5, 0.5),
                delta_t: 2.0 + i as Float,
            })
            .collect();
        let with_lut = model.compute_embedding(&memory, None, &neighbors);
        let mut cos_model = model.clone();
        cos_model.config.time_encoder = TimeEncoderKind::Cos;
        let with_cos = cos_model.compute_embedding(&memory, None, &neighbors);
        let dist: Float = with_lut
            .embedding
            .iter()
            .zip(&with_cos.embedding)
            .map(|(&a, &b)| (a - b).abs())
            .sum::<Float>()
            / cfg.embedding_dim as Float;
        assert!(dist < 0.5, "LUT and cos paths diverge too much: {dist}");
    }

    #[test]
    fn memory_update_respects_gru_interpolation_bound() {
        let mut rng = TensorRng::new(7);
        let cfg = ModelConfig::tiny(0, 4);
        let model = TgnModel::new(cfg.clone(), &mut rng);
        let messages = rng.uniform_matrix(3, cfg.message_dim(), -1.0, 1.0);
        let memories = rng.uniform_matrix(3, cfg.memory_dim, -0.5, 0.5);
        let updated = model.update_memory(&messages, &memories);
        assert_eq!(updated.shape(), (3, cfg.memory_dim));
        assert!(updated.max_abs() <= 1.0 + 1e-5);
    }

    #[test]
    fn backward_embedding_accumulates_gradients_and_matches_fd_for_memory() {
        let mut rng = TensorRng::new(8);
        let cfg = ModelConfig::tiny(0, 4);
        let mut model = TgnModel::new(cfg.clone(), &mut rng);
        let memory = rng.uniform_vec(cfg.memory_dim, -1.0, 1.0);
        let neighbors = tiny_neighbors(&mut rng, 3, &cfg);

        let (out, cache) = model.compute_embedding_cached(&memory, None, &neighbors);
        let loss = out.embedding.iter().sum::<Float>();
        let grad = vec![1.0; cfg.embedding_dim];
        let grad_memory = model.backward_embedding(&cache, &grad);

        // FTM gradients were accumulated.
        assert!(model.output.weight.grad.max_abs() > 0.0);
        // Finite-difference check of d loss / d memory for a few coordinates.
        let eps = 1e-2;
        for idx in [0usize, cfg.memory_dim / 2, cfg.memory_dim - 1] {
            let mut plus = memory.clone();
            plus[idx] += eps;
            let mut minus = memory.clone();
            minus[idx] -= eps;
            let lp = model
                .compute_embedding(&plus, None, &neighbors)
                .embedding
                .iter()
                .sum::<Float>();
            let lm = model
                .compute_embedding(&minus, None, &neighbors)
                .embedding
                .iter()
                .sum::<Float>();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                approx_eq(grad_memory[idx], numeric, 5e-2),
                "idx {idx}: analytic {} vs numeric {numeric} (loss {loss})",
                grad_memory[idx]
            );
        }
    }

    #[test]
    fn batched_embeddings_are_bitwise_identical_to_per_vertex() {
        let mut rng = TensorRng::new(21);
        for variant in OptimizationVariant::ladder() {
            let cfg = ModelConfig::tiny(0, 4).with_variant(variant);
            let mut model = TgnModel::new(cfg.clone(), &mut rng);
            if cfg.time_encoder == TimeEncoderKind::Lut {
                let samples: Vec<Float> = (0..500).map(|_| rng.pareto(1.0, 1.3).min(1e4)).collect();
                model.calibrate_lut(&samples);
            }
            // A mixed batch: varying neighbor counts including zero.
            let batch: Vec<(Vec<Float>, Vec<NeighborContext>)> = (0..7)
                .map(|i| {
                    let memory = rng.uniform_vec(cfg.memory_dim, -1.0, 1.0);
                    let neighbors = tiny_neighbors(&mut rng, i % (cfg.sampled_neighbors + 1), &cfg);
                    (memory, neighbors)
                })
                .collect();

            let reference: Vec<EmbeddingOutput> = batch
                .iter()
                .map(|(m, nbrs)| model.compute_embedding(m, None, nbrs))
                .collect();

            let nbr_refs: Vec<Vec<NeighborRef<'_>>> = batch
                .iter()
                .map(|(_, nbrs)| {
                    nbrs.iter()
                        .map(|c| NeighborRef {
                            memory: &c.memory,
                            edge_feature: &c.edge_feature,
                            delta_t: c.delta_t,
                        })
                        .collect()
                })
                .collect();
            let jobs: Vec<EmbeddingJob<'_>> = batch
                .iter()
                .zip(&nbr_refs)
                .map(|((m, _), refs)| EmbeddingJob {
                    memory: m,
                    node_feature: None,
                    neighbors: refs,
                })
                .collect();
            let mut ws = Workspace::new();
            let batched = model.compute_embeddings_batch(&jobs, &mut ws);

            assert_eq!(batched.len(), reference.len());
            for (i, (b, r)) in batched.iter().zip(&reference).enumerate() {
                assert_eq!(b.embedding, r.embedding, "{variant:?} vertex {i} embedding");
                assert_eq!(
                    b.attention_logits, r.attention_logits,
                    "{variant:?} vertex {i} logits"
                );
                assert_eq!(
                    b.used_neighbors, r.used_neighbors,
                    "{variant:?} vertex {i} selection"
                );
            }
        }
    }

    #[test]
    fn batched_embeddings_with_node_features_match() {
        let mut rng = TensorRng::new(22);
        let cfg = ModelConfig::tiny(5, 0);
        let model = TgnModel::new(cfg.clone(), &mut rng);
        let memory = rng.uniform_vec(cfg.memory_dim, -1.0, 1.0);
        let feat = rng.uniform_vec(5, -1.0, 1.0);
        let neighbors = tiny_neighbors(&mut rng, 3, &cfg);
        let reference = model.compute_embedding(&memory, Some(&feat), &neighbors);
        let refs: Vec<NeighborRef<'_>> = neighbors
            .iter()
            .map(|c| NeighborRef {
                memory: &c.memory,
                edge_feature: &c.edge_feature,
                delta_t: c.delta_t,
            })
            .collect();
        let jobs = [EmbeddingJob {
            memory: &memory,
            node_feature: Some(&feat),
            neighbors: &refs,
        }];
        let mut ws = Workspace::new();
        let batched = model.compute_embeddings_batch(&jobs, &mut ws);
        assert_eq!(batched[0].embedding, reference.embedding);
    }

    #[test]
    fn init_from_teacher_copies_shared_modules() {
        let mut rng = TensorRng::new(9);
        let cfg_teacher = ModelConfig::tiny(0, 4);
        let teacher = TgnModel::new(cfg_teacher.clone(), &mut rng);
        let cfg_student = cfg_teacher.with_variant(OptimizationVariant::Sat);
        let mut student = TgnModel::new(cfg_student, &mut rng);
        student.init_from_teacher(&teacher);
        assert_eq!(
            student.gru.w_in.weight.value.as_slice(),
            teacher.gru.w_in.weight.value.as_slice()
        );
        assert_eq!(
            student.output.weight.value.as_slice(),
            teacher.output.weight.value.as_slice()
        );
    }
}
