//! Pluggable compute backends over the stage entry points.
//!
//! The engine hard-wires one arithmetic path per
//! [`ExecMode`](crate::ExecMode); the paper's co-design argument, however,
//! is about *heterogeneous datapaths* — the same model served from an f32
//! CPU path, an int8 fixed-point path, or an FPGA pipeline, chosen per
//! workload.  [`ComputeBackend`] is the seam that makes the choice
//! pluggable: a backend owns a *prepared* weight set and answers the stage
//! entry points of [`crate::stages`], so a scheduler (the `tgnn-serve`
//! streaming pipeline) can route different tenants' batches to different
//! backends while sharing one temporal-state trajectory.
//!
//! The contract every backend honours:
//!
//! * **Sampling and memory are shared.**  The temporal state (vertex
//!   memory, mailbox, neighbor table) is one trajectory regardless of who
//!   computes embeddings; the default [`ComputeBackend::stage_sample`] and
//!   [`ComputeBackend::run_memory`] delegate to the shared stage functions
//!   and are not meant to be overridden with different arithmetic.
//! * **GNN compute is the backend-specific stage.**
//!   [`ComputeBackend::run_gnn`] runs the gathered [`GnnJobBatch`] on the
//!   backend's prepared weights.  [`F32Backend`] and [`Int8Backend`]
//!   execute the exact kernels of `ExecMode::Batched` and
//!   `ExecMode::Quantized` respectively, so a stream routed through either
//!   is bit-identical to the corresponding standalone engine (the
//!   backend-equivalence matrix in `tgnn-serve/tests/backends.rs` pins
//!   this).  A modeled backend (`tgnn-hwsim`'s `HwSimBackend`) computes
//!   with the f32 kernels but additionally reports a *modeled* service
//!   latency in [`GnnStageOutput::modeled_latency`].
//! * **Update is a state write-back**, not model compute: it is performed
//!   by the caller against the shared state and is identical for every
//!   backend.

use crate::memory::Message;
use crate::model::TgnModel;
use crate::stages::{run_memory_stage, GnnJobBatch, SampledBatch};
use std::sync::Arc;
use std::time::Duration;
use tgnn_graph::{EventBatch, NeighborEntry, NodeId, Timestamp};
use tgnn_tensor::{Float, Workspace};

/// Which compute backend serves a batch — carried on every result's
/// [`ResultMeta`](crate::tenancy::ResultMeta) so clients can audit the
/// routing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BackendKind {
    /// The f32 batched path (`ExecMode::Batched` kernels).
    #[default]
    F32,
    /// The int8 fixed-point path (`ExecMode::Quantized` kernels; requires
    /// an attached [`QuantizedTgn`](crate::QuantizedTgn) weight set).
    Int8,
    /// The hwsim-modeled FPGA datapath: f32 kernels for the values, a
    /// cycle-approximate pipeline model for the latency — hardware in the
    /// scheduling loop without hardware.
    HwSim,
}

/// Number of backend kinds (the size of a `code()`-indexed table).
pub const NUM_BACKEND_KINDS: usize = 3;

impl BackendKind {
    /// All kinds, in `code()` order.
    pub const ALL: [BackendKind; NUM_BACKEND_KINDS] =
        [BackendKind::F32, BackendKind::Int8, BackendKind::HwSim];

    /// Stable lower-case label, used in reports and the bench JSON.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::F32 => "f32",
            BackendKind::Int8 => "int8",
            BackendKind::HwSim => "hwsim",
        }
    }

    /// Dense index for `code()`-indexed tables (0, 1, 2).
    pub fn code(self) -> usize {
        match self {
            BackendKind::F32 => 0,
            BackendKind::Int8 => 1,
            BackendKind::HwSim => 2,
        }
    }

    /// Inverse of [`Self::code`].
    ///
    /// # Panics
    /// Panics if `code >= NUM_BACKEND_KINDS`.
    pub fn from_code(code: usize) -> Self {
        Self::ALL[code]
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for BackendKind {
    type Err = String;

    /// Parses the labels `label()` emits (case/underscore-insensitive):
    /// `f32`, `int8`, `hwsim`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().replace('_', "-").as_str() {
            "f32" | "fp32" => Ok(BackendKind::F32),
            "int8" | "i8" | "quantized" => Ok(BackendKind::Int8),
            "hwsim" | "hw-sim" | "fpga" => Ok(BackendKind::HwSim),
            other => Err(format!(
                "unknown compute backend {other:?} (expected f32|int8|hwsim)"
            )),
        }
    }
}

/// Output of one GNN compute stage run on a backend.
#[derive(Clone, Debug)]
pub struct GnnStageOutput {
    /// `(vertex, embedding)` in the job's touched order — for [`F32Backend`]
    /// and [`Int8Backend`] exactly what `GnnJobBatch::run` produces on the
    /// backend's prepared model.
    pub embeddings: Vec<(NodeId, Vec<Float>)>,
    /// Service latency a modeled backend (hwsim) predicts for this job on
    /// its datapath; `None` for backends that really execute where they
    /// are measured.
    pub modeled_latency: Option<Duration>,
}

/// A prepared compute backend: owned weights plus the stage entry points.
///
/// Implementations must be cheap to share (`Send + Sync`) — the serving
/// pipeline hands one `Arc<dyn ComputeBackend>` to every worker of the
/// backend's GNN pool.
pub trait ComputeBackend: Send + Sync {
    /// Which datapath this backend implements.
    fn kind(&self) -> BackendKind;

    /// The prepared weight set the stage entry points run on.
    fn model(&self) -> &Arc<TgnModel>;

    /// The sampling stage — shared across backends (sampling touches no
    /// model weights).  Provided so a backend is a complete set of stage
    /// entry points; the default delegates to [`SampledBatch::assemble`].
    #[allow(clippy::type_complexity)]
    fn stage_sample(
        &self,
        batch: EventBatch,
        k: usize,
        sample: &mut dyn FnMut(NodeId, Timestamp, usize, &mut Vec<NeighborEntry>),
    ) -> SampledBatch {
        SampledBatch::assemble(batch, k, |v, t, kk, out| sample(v, t, kk, out))
    }

    /// The GRU memory stage on this backend's prepared model.  Note that a
    /// *multi-backend* scheduler must run the memory stage once on one
    /// shared model (a single state trajectory), not once per backend —
    /// this entry point is for standalone single-backend use.
    fn run_memory(
        &self,
        with_messages: &[(NodeId, Message)],
        last_update: &mut dyn FnMut(NodeId) -> Timestamp,
        read_memory: &mut dyn FnMut(NodeId, &mut [Float]),
        ws: &mut Workspace,
    ) -> Vec<(NodeId, Vec<Float>)> {
        run_memory_stage(
            self.model(),
            with_messages,
            last_update,
            |v, dst| read_memory(v, dst),
            ws,
        )
    }

    /// The backend-specific GNN compute stage: runs the gathered job on the
    /// prepared weights.  The default executes for real and models nothing.
    fn run_gnn(&self, job: &GnnJobBatch, ws: &mut Workspace) -> GnnStageOutput {
        GnnStageOutput {
            embeddings: job.run(self.model(), ws),
            modeled_latency: None,
        }
    }
}

/// Today's batched f32 path as a backend (`ExecMode::Batched` kernels).
pub struct F32Backend {
    model: Arc<TgnModel>,
}

impl F32Backend {
    /// Prepares the backend from `model`, detaching any int8 weight set so
    /// the batched entry points stay on the f32 kernels.
    pub fn new(model: &TgnModel) -> Self {
        let mut m = model.clone();
        m.detach_quantized();
        Self { model: Arc::new(m) }
    }
}

impl ComputeBackend for F32Backend {
    fn kind(&self) -> BackendKind {
        BackendKind::F32
    }

    fn model(&self) -> &Arc<TgnModel> {
        &self.model
    }
}

/// The int8 fixed-point path as a backend (`ExecMode::Quantized` kernels).
pub struct Int8Backend {
    model: Arc<TgnModel>,
}

impl Int8Backend {
    /// Prepares the backend from `model`, which must carry an attached
    /// [`QuantizedTgn`](crate::QuantizedTgn) weight set
    /// (see [`quantize_model`](crate::quantize_model)).
    ///
    /// # Panics
    /// Panics if no int8 weight set is attached.
    pub fn new(model: &TgnModel) -> Self {
        assert!(
            model.is_quantized(),
            "Int8Backend requires an attached int8 weight set \
             (quantize_model + TgnModel::attach_quantized)"
        );
        Self {
            model: Arc::new(model.clone()),
        }
    }
}

impl ComputeBackend for Int8Backend {
    fn kind(&self) -> BackendKind {
        BackendKind::Int8
    }

    fn model(&self) -> &Arc<TgnModel> {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use tgnn_tensor::TensorRng;

    #[test]
    fn backend_kind_labels_roundtrip_through_from_str() {
        for k in BackendKind::ALL {
            assert_eq!(k.label().parse::<BackendKind>().unwrap(), k);
            assert_eq!(BackendKind::from_code(k.code()), k);
        }
        assert_eq!("FP32".parse::<BackendKind>().unwrap(), BackendKind::F32);
        assert_eq!(
            "quantized".parse::<BackendKind>().unwrap(),
            BackendKind::Int8
        );
        assert_eq!("HW_SIM".parse::<BackendKind>().unwrap(), BackendKind::HwSim);
        assert!("tpu".parse::<BackendKind>().is_err());
        assert_eq!(BackendKind::default(), BackendKind::F32);
    }

    #[test]
    fn f32_backend_detaches_quantized_weights() {
        let cfg = ModelConfig::tiny(3, 2);
        let model = TgnModel::new(cfg, &mut TensorRng::new(7));
        let b = F32Backend::new(&model);
        assert_eq!(b.kind(), BackendKind::F32);
        assert!(!b.model().is_quantized());
    }

    #[test]
    #[should_panic(expected = "Int8Backend requires an attached int8 weight set")]
    fn int8_backend_rejects_unquantized_models() {
        let cfg = ModelConfig::tiny(3, 2);
        let model = TgnModel::new(cfg, &mut TensorRng::new(7));
        let _ = Int8Backend::new(&model);
    }
}
