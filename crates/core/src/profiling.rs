//! Wall-clock stage profiling — the execution-time breakdown of Table I.

use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// The four stages of memory-based TGNN inference identified in
/// Section II-B.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Accessing the dynamic graph and sampling temporal neighbors.
    Sample,
    /// Aggregating messages and computing the updated node memory (GRU).
    Memory,
    /// Applying the attention aggregator to produce embeddings.
    Gnn,
    /// Writing back updated memory / messages / neighbor tables.
    Update,
}

impl Stage {
    /// All stages in pipeline order.
    pub fn all() -> [Stage; 4] {
        [Stage::Sample, Stage::Memory, Stage::Gnn, Stage::Update]
    }

    /// Label used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            Stage::Sample => "sample",
            Stage::Memory => "memory",
            Stage::Gnn => "GNN",
            Stage::Update => "update",
        }
    }
}

/// Accumulated wall-clock time per stage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageTimings {
    pub sample: Duration,
    pub memory: Duration,
    pub gnn: Duration,
    pub update: Duration,
}

impl StageTimings {
    /// Total across stages.
    pub fn total(&self) -> Duration {
        self.sample + self.memory + self.gnn + self.update
    }

    /// Adds elapsed time to a stage.
    pub fn add(&mut self, stage: Stage, elapsed: Duration) {
        match stage {
            Stage::Sample => self.sample += elapsed,
            Stage::Memory => self.memory += elapsed,
            Stage::Gnn => self.gnn += elapsed,
            Stage::Update => self.update += elapsed,
        }
    }

    /// Reads a stage's accumulated time.
    pub fn get(&self, stage: Stage) -> Duration {
        match stage {
            Stage::Sample => self.sample,
            Stage::Memory => self.memory,
            Stage::Gnn => self.gnn,
            Stage::Update => self.update,
        }
    }

    /// Fraction of total time spent in a stage (0 if total is zero).
    pub fn fraction(&self, stage: Stage) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.get(stage).as_secs_f64() / total
        }
    }

    /// Merges another timing record into this one.
    pub fn merge(&mut self, other: &StageTimings) {
        self.sample += other.sample;
        self.memory += other.memory;
        self.gnn += other.gnn;
        self.update += other.update;
    }

    /// Average nanoseconds per item (e.g. per generated embedding), the unit
    /// used by Table I.
    pub fn nanos_per_item(&self, stage: Stage, items: usize) -> f64 {
        if items == 0 {
            0.0
        } else {
            self.get(stage).as_nanos() as f64 / items as f64
        }
    }
}

/// RAII-free stage timer: call [`StageTimer::start`], do the work, then
/// [`StageTimer::stop`] to accumulate.
#[derive(Debug)]
pub struct StageTimer {
    timings: StageTimings,
    current: Option<(Stage, Instant)>,
}

impl Default for StageTimer {
    fn default() -> Self {
        Self::new()
    }
}

impl StageTimer {
    /// Creates an empty timer.
    pub fn new() -> Self {
        Self {
            timings: StageTimings::default(),
            current: None,
        }
    }

    /// Starts timing a stage.  Any previously running stage is stopped
    /// first.
    pub fn start(&mut self, stage: Stage) {
        self.stop();
        self.current = Some((stage, Instant::now()));
    }

    /// Stops the currently running stage (no-op if none).
    pub fn stop(&mut self) {
        if let Some((stage, started)) = self.current.take() {
            self.timings.add(stage, started.elapsed());
        }
    }

    /// Finishes and returns the accumulated timings.
    pub fn finish(mut self) -> StageTimings {
        self.stop();
        self.timings
    }

    /// Reads the timings accumulated so far (does not stop the running
    /// stage).
    pub fn timings(&self) -> StageTimings {
        self.timings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread::sleep;

    #[test]
    fn stage_labels_and_order() {
        let all = Stage::all();
        assert_eq!(all.len(), 4);
        assert_eq!(all[0].label(), "sample");
        assert_eq!(all[2].label(), "GNN");
    }

    #[test]
    fn timings_accumulate_and_fraction() {
        let mut t = StageTimings::default();
        t.add(Stage::Gnn, Duration::from_millis(30));
        t.add(Stage::Memory, Duration::from_millis(10));
        t.add(Stage::Gnn, Duration::from_millis(10));
        assert_eq!(t.get(Stage::Gnn), Duration::from_millis(40));
        assert_eq!(t.total(), Duration::from_millis(50));
        assert!((t.fraction(Stage::Gnn) - 0.8).abs() < 1e-9);
        assert_eq!(t.nanos_per_item(Stage::Memory, 10), 1_000_000.0);
        assert_eq!(t.nanos_per_item(Stage::Memory, 0), 0.0);
    }

    #[test]
    fn merge_combines_records() {
        let mut a = StageTimings::default();
        a.add(Stage::Sample, Duration::from_millis(1));
        let mut b = StageTimings::default();
        b.add(Stage::Sample, Duration::from_millis(2));
        b.add(Stage::Update, Duration::from_millis(3));
        a.merge(&b);
        assert_eq!(a.get(Stage::Sample), Duration::from_millis(3));
        assert_eq!(a.get(Stage::Update), Duration::from_millis(3));
    }

    #[test]
    fn timer_records_elapsed_time() {
        let mut timer = StageTimer::new();
        timer.start(Stage::Gnn);
        sleep(Duration::from_millis(5));
        timer.start(Stage::Update); // implicitly stops GNN
        sleep(Duration::from_millis(1));
        let t = timer.finish();
        assert!(t.get(Stage::Gnn) >= Duration::from_millis(4));
        assert!(t.get(Stage::Update) >= Duration::from_micros(500));
        assert_eq!(t.get(Stage::Sample), Duration::ZERO);
    }
}
