//! Stage-level building blocks of Algorithm 1, factored out of the batch
//! engine so a pipeline can drive them independently.
//!
//! [`InferenceEngine::process_batch`](crate::InferenceEngine::process_batch)
//! composes four stages — sample, memory, GNN, update — in one synchronous
//! call.  The streaming server (`tgnn-serve`) runs the same stages as
//! separate workers connected by bounded queues, so the stage computations
//! live here as free functions / owned job types that both callers share:
//! using the *same* arithmetic path is what keeps the pipelined output
//! bit-identical to the serial engine.
//!
//! * [`SampledBatch`] — output of the sampling stage: touched vertices, query
//!   times, and all sampled neighbor entries in one flat arena (no per-vertex
//!   `Vec`s).
//! * [`run_memory_stage`] — the allocation-free GRU memory update over the
//!   vertices with pending mailbox messages, generic over how memory rows are
//!   read (direct [`NodeMemory`](crate::NodeMemory) access in the engine,
//!   per-shard locks in the pipeline).
//! * [`GnnJobBatch`] — a self-contained, owned input for the batched GNN
//!   stage: every memory row, edge feature, and Δt is copied out of the
//!   shared state, so the compute stage can run while the update stage
//!   commits the *next* batch's state.

use crate::config::ModelConfig;
use crate::memory::Message;
use crate::model::{EmbeddingJob, NeighborRef, TgnModel};
use std::collections::HashMap;
use tgnn_graph::{EventBatch, NeighborEntry, NodeId, TemporalGraph, Timestamp};
use tgnn_tensor::{Float, Matrix, Workspace};

/// Output of the sampling stage for one batch: the touched vertices in order
/// of first appearance, their query times, and the sampled supporting
/// neighbors of all vertices packed into one flat arena.
#[derive(Clone, Debug, Default)]
pub struct SampledBatch {
    /// The batch of events this sampling belongs to.
    pub batch: EventBatch,
    /// Touched vertices, deduplicated, in order of first appearance.
    pub touched: Vec<NodeId>,
    /// Query time (latest event timestamp within the batch) per touched
    /// vertex, aligned with `touched`.
    pub query_times: Vec<Timestamp>,
    /// Flat neighbor arena; `ranges` indexes into it.
    neighbors: Vec<NeighborEntry>,
    /// Per-touched-vertex `(start, len)` into `neighbors`.
    ranges: Vec<(usize, usize)>,
    /// Vertex → index into `touched`.
    index: HashMap<NodeId, usize>,
}

impl SampledBatch {
    /// Builds the sampled batch by calling `sample(v, t, k, out)` once per
    /// touched vertex, appending into the shared arena.  `sample` must append
    /// at most `k` entries, most recent first — exactly the contract of
    /// [`tgnn_graph::TemporalSampler::sample_into`].
    pub fn assemble(
        batch: EventBatch,
        k: usize,
        mut sample: impl FnMut(NodeId, Timestamp, usize, &mut Vec<NeighborEntry>),
    ) -> Self {
        let touched = batch.touched_vertices();
        let mut index = HashMap::with_capacity(touched.len());
        for (i, &v) in touched.iter().enumerate() {
            index.insert(v, i);
        }
        let mut query_times = vec![Timestamp::NEG_INFINITY; touched.len()];
        for e in batch.events() {
            for v in e.endpoints() {
                let slot = &mut query_times[index[&v]];
                if e.timestamp > *slot {
                    *slot = e.timestamp;
                }
            }
        }
        let mut neighbors = Vec::with_capacity(touched.len() * k);
        let mut ranges = Vec::with_capacity(touched.len());
        for (i, &v) in touched.iter().enumerate() {
            let start = neighbors.len();
            sample(v, query_times[i], k, &mut neighbors);
            ranges.push((start, neighbors.len() - start));
        }
        Self {
            batch,
            touched,
            query_times,
            neighbors,
            ranges,
            index,
        }
    }

    /// Number of touched vertices (= embeddings the batch will produce).
    pub fn len(&self) -> usize {
        self.touched.len()
    }

    /// True when the batch touches no vertices.
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty()
    }

    /// The sampled neighbors of the `i`-th touched vertex, most recent first.
    pub fn neighbors_of(&self, i: usize) -> &[NeighborEntry] {
        let (start, len) = self.ranges[i];
        &self.neighbors[start..start + len]
    }

    /// Total number of sampled neighbor entries across the batch.
    pub fn total_sampled(&self) -> usize {
        self.neighbors.len()
    }

    /// Index of a touched vertex, if present.
    pub fn index_of(&self, v: NodeId) -> Option<usize> {
        self.index.get(&v).copied()
    }

    /// Query time of a touched vertex.
    ///
    /// # Panics
    /// Panics if `v` is not touched by the batch.
    pub fn query_time_of(&self, v: NodeId) -> Timestamp {
        self.query_times[self.index[&v]]
    }
}

/// Runs the GRU memory update over the vertices that had a pending mailbox
/// message — the allocation-free memory stage shared by
/// [`ExecMode::Batched`](crate::ExecMode) and the streaming pipeline.
///
/// `with_messages` lists `(vertex, consumed message)` in touched order;
/// `last_update` and `read_memory` abstract the memory-table reads so the
/// caller can serve them from a plain [`NodeMemory`](crate::NodeMemory) or
/// from per-shard locks.  Returns `(vertex, new memory)` in input order.
/// Results are bit-identical to the engine's serial reference path.
pub fn run_memory_stage(
    model: &TgnModel,
    with_messages: &[(NodeId, Message)],
    last_update: impl FnMut(NodeId) -> Timestamp,
    read_memory: impl FnMut(NodeId, &mut [Float]),
    ws: &mut Workspace,
) -> Vec<(NodeId, Vec<Float>)> {
    run_memory_stage_obs(model, with_messages, last_update, read_memory, ws, None)
}

/// [`run_memory_stage`] with an optional activation observer recording the
/// assembled GRU inputs (message rows and memory rows) — the hook the int8
/// calibration pass uses to derive the GRU's static activation scales.
pub fn run_memory_stage_obs(
    model: &TgnModel,
    with_messages: &[(NodeId, Message)],
    mut last_update: impl FnMut(NodeId) -> Timestamp,
    mut read_memory: impl FnMut(NodeId, &mut [Float]),
    ws: &mut Workspace,
    obs: Option<&mut dyn tgnn_quant::ActivationObserver>,
) -> Vec<(NodeId, Vec<Float>)> {
    let rows = with_messages.len();
    if rows == 0 {
        return Vec::new();
    }
    let cfg = &model.config;
    let mut dts = ws.take(rows);
    for (dt, (v, msg)) in dts.iter_mut().zip(with_messages) {
        *dt = (msg.event_time - last_update(*v)).max(0.0) as Float;
    }
    let mut encodings = ws.take_matrix(rows, cfg.time_dim);
    model.encode_time_into(&dts, &mut encodings);

    let mut messages = ws.take_matrix(rows, cfg.message_dim());
    let mut memories = ws.take_matrix(rows, cfg.memory_dim);
    let mem_dim = cfg.memory_dim;
    let efeat = cfg.edge_feature_dim;
    for (i, (v, msg)) in with_messages.iter().enumerate() {
        let row = messages.row_mut(i);
        row[..mem_dim].copy_from_slice(&msg.self_memory);
        row[mem_dim..2 * mem_dim].copy_from_slice(&msg.other_memory);
        row[2 * mem_dim..2 * mem_dim + efeat].copy_from_slice(&msg.edge_feature);
        row[2 * mem_dim + efeat..].copy_from_slice(encodings.row(i));
        read_memory(*v, memories.row_mut(i));
    }
    if let Some(o) = obs {
        o.record(crate::quantized::layers::GRU_INPUT, messages.as_slice());
        o.record(crate::quantized::layers::GRU_HIDDEN, memories.as_slice());
    }

    let updated = model.update_memory_ws(&messages, &memories, ws);
    let out = with_messages
        .iter()
        .enumerate()
        .map(|(i, (v, _))| (*v, updated.row_to_vec(i)))
        .collect();
    ws.recycle_matrix(updated);
    ws.recycle_matrix(memories);
    ws.recycle_matrix(messages);
    ws.recycle_matrix(encodings);
    ws.recycle(dts);
    out
}

/// A self-contained, owned input for the batched GNN stage.
///
/// Where the engine's in-process GNN stage points zero-copy into the live
/// memory table, a pipelined GNN stage runs *concurrently* with the update
/// stage that commits the next batch — so everything it reads is copied out
/// of the shared state at gather time.  Because the gathered values equal
/// what the serial engine would have read, and the compute path is the same
/// [`TgnModel::compute_embeddings_batch`], the results stay bit-identical.
#[derive(Clone, Debug)]
pub struct GnnJobBatch {
    touched: Vec<NodeId>,
    self_memory: Matrix,
    node_features: Option<Matrix>,
    nbr_memory: Matrix,
    nbr_edge: Matrix,
    nbr_dt: Vec<Float>,
    ranges: Vec<(usize, usize)>,
}

impl GnnJobBatch {
    /// Gathers the owned GNN inputs for a sampled batch: the (updated) memory
    /// of every touched vertex, its static node feature (if the model uses
    /// them), and each sampled neighbor's memory row, edge feature, and time
    /// delta.  `read_memory` supplies pre-write-back memory rows, matching
    /// what the serial engine reads during its GNN stage.
    pub fn gather(
        sampled: &SampledBatch,
        updated: &HashMap<NodeId, Vec<Float>>,
        graph: &TemporalGraph,
        cfg: &ModelConfig,
        mut read_memory: impl FnMut(NodeId, &mut [Float]),
    ) -> Self {
        let t = sampled.len();
        let total = sampled.total_sampled();
        let mem_dim = cfg.memory_dim;

        let mut self_memory = Matrix::zeros(t, mem_dim);
        for (i, &v) in sampled.touched.iter().enumerate() {
            match updated.get(&v) {
                Some(m) => self_memory.row_mut(i).copy_from_slice(m),
                None => read_memory(v, self_memory.row_mut(i)),
            }
        }
        let node_features = (cfg.node_feature_dim > 0).then(|| {
            let mut f = Matrix::zeros(t, cfg.node_feature_dim);
            for (i, &v) in sampled.touched.iter().enumerate() {
                f.row_mut(i).copy_from_slice(graph.node_feature(v));
            }
            f
        });

        let mut nbr_memory = Matrix::zeros(total, mem_dim);
        let mut nbr_edge = Matrix::zeros(total, cfg.edge_feature_dim);
        let mut nbr_dt = vec![0.0; total];
        let mut row = 0;
        for i in 0..t {
            let query_time = sampled.query_times[i];
            for e in sampled.neighbors_of(i) {
                read_memory(e.neighbor, nbr_memory.row_mut(row));
                nbr_edge
                    .row_mut(row)
                    .copy_from_slice(graph.edge_feature(e.edge_id));
                nbr_dt[row] = (query_time - e.timestamp).max(0.0) as Float;
                row += 1;
            }
        }

        Self {
            touched: sampled.touched.clone(),
            self_memory,
            node_features,
            nbr_memory,
            nbr_edge,
            nbr_dt,
            ranges: sampled.ranges.clone(),
        }
    }

    /// The touched vertices, aligned with the outputs of [`Self::run`].
    pub fn touched(&self) -> &[NodeId] {
        &self.touched
    }

    /// Splits the job into at most `parts` contiguous sub-jobs over the
    /// touched vertices, each self-contained and independently computable.
    ///
    /// Because [`Self::run`] is row-independent (each embedding depends only
    /// on its own vertex's gathered inputs — the property that already makes
    /// the batched path bit-identical to the serial engine), running the
    /// sub-jobs in any order and concatenating their outputs **in part
    /// order** reproduces the unsplit job's output bitwise, for every
    /// `parts`.  This is what lets a pool of GNN workers share one batch.
    ///
    /// Chunks are balanced (sizes differ by at most one); fewer than `parts`
    /// sub-jobs are returned when the job has fewer vertices.  An empty job
    /// returns itself as a single part.
    ///
    /// # Panics
    /// Panics if `parts == 0`.
    pub fn split(self, parts: usize) -> Vec<GnnJobBatch> {
        assert!(parts > 0, "GnnJobBatch::split: need at least one part");
        let t = self.touched.len();
        if parts == 1 || t <= 1 {
            return vec![self];
        }
        let parts = parts.min(t);
        let base = t / parts;
        let extra = t % parts; // first `extra` chunks get one more vertex
                               // Row ranges are contiguous, so each sub-matrix is one slice copy.
        let rows = |m: &Matrix, a: usize, b: usize| {
            Matrix::from_vec(
                b - a,
                m.cols(),
                m.as_slice()[a * m.cols()..b * m.cols()].to_vec(),
            )
        };
        let mut out = Vec::with_capacity(parts);
        let mut start = 0usize;
        for p in 0..parts {
            let len = base + usize::from(p < extra);
            let end = start + len;
            // Neighbor-arena span of this vertex chunk: ranges are contiguous
            // in vertex order, so the span is [first chunk start, last end).
            let nbr_start = self.ranges[start].0;
            let (last_start, last_len) = self.ranges[end - 1];
            let nbr_end = last_start + last_len;
            out.push(GnnJobBatch {
                touched: self.touched[start..end].to_vec(),
                self_memory: rows(&self.self_memory, start, end),
                node_features: self.node_features.as_ref().map(|f| rows(f, start, end)),
                nbr_memory: rows(&self.nbr_memory, nbr_start, nbr_end),
                nbr_edge: rows(&self.nbr_edge, nbr_start, nbr_end),
                nbr_dt: self.nbr_dt[nbr_start..nbr_end].to_vec(),
                ranges: self.ranges[start..end]
                    .iter()
                    .map(|&(s, l)| (s - nbr_start, l))
                    .collect(),
            });
            start = end;
        }
        out
    }

    /// Number of embeddings the job will produce.
    pub fn len(&self) -> usize {
        self.touched.len()
    }

    /// Total number of gathered neighbor rows across the job — the
    /// neighbor-fetch workload a modeled backend feeds its datapath model.
    pub fn total_neighbors(&self) -> usize {
        self.nbr_dt.len()
    }

    /// True when the job holds no vertices.
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty()
    }

    /// Runs the batched GNN compute on the gathered inputs — pure in the
    /// model and the job, so it can execute on any worker thread.
    pub fn run(&self, model: &TgnModel, ws: &mut Workspace) -> Vec<(NodeId, Vec<Float>)> {
        let total = self.nbr_dt.len();
        let mut nbr_refs: Vec<NeighborRef<'_>> = Vec::with_capacity(total);
        for r in 0..total {
            nbr_refs.push(NeighborRef {
                memory: self.nbr_memory.row(r),
                edge_feature: self.nbr_edge.row(r),
                delta_t: self.nbr_dt[r],
            });
        }
        let jobs: Vec<EmbeddingJob<'_>> = self
            .touched
            .iter()
            .enumerate()
            .map(|(i, _)| EmbeddingJob {
                memory: self.self_memory.row(i),
                node_feature: self.node_features.as_ref().map(|f| f.row(i)),
                neighbors: {
                    let (start, len) = self.ranges[i];
                    &nbr_refs[start..start + len]
                },
            })
            .collect();
        let outputs = model.compute_embeddings_batch(&jobs, ws);
        self.touched
            .iter()
            .zip(outputs)
            .map(|(&v, out)| (v, out.embedding))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgnn_tensor::TensorRng;

    /// A synthetic gathered job with `t` vertices, vertex `i` having `i % 4`
    /// neighbors, every value drawn from the RNG so misaligned splits show.
    fn synthetic_job(cfg: &ModelConfig, t: usize, rng: &mut TensorRng) -> GnnJobBatch {
        let mut ranges = Vec::with_capacity(t);
        let mut total = 0usize;
        for i in 0..t {
            let k = i % 4;
            ranges.push((total, k));
            total += k;
        }
        GnnJobBatch {
            touched: (0..t as NodeId).collect(),
            self_memory: rng.uniform_matrix(t, cfg.memory_dim, -1.0, 1.0),
            node_features: (cfg.node_feature_dim > 0)
                .then(|| rng.uniform_matrix(t, cfg.node_feature_dim, -1.0, 1.0)),
            nbr_memory: rng.uniform_matrix(total, cfg.memory_dim, -1.0, 1.0),
            nbr_edge: rng.uniform_matrix(total, cfg.edge_feature_dim, -1.0, 1.0),
            nbr_dt: (0..total).map(|_| rng.uniform(0.0, 10.0)).collect(),
            ranges,
        }
    }

    #[test]
    fn split_partitions_vertices_and_rebases_neighbor_ranges() {
        let cfg = ModelConfig::tiny(3, 2);
        let mut rng = TensorRng::new(11);
        let job = synthetic_job(&cfg, 10, &mut rng);
        for parts in [1usize, 2, 3, 7, 10, 25] {
            let subs = job.clone().split(parts);
            assert_eq!(subs.len(), parts.min(10), "parts={parts}");
            let sizes: Vec<usize> = subs.iter().map(|s| s.len()).collect();
            assert_eq!(sizes.iter().sum::<usize>(), 10);
            assert!(sizes.iter().all(|&s| s > 0));
            assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
            // Concatenating sub-jobs in part order reproduces the original
            // vertex order and per-vertex neighbor data exactly.
            let mut vi = 0usize;
            for sub in &subs {
                for i in 0..sub.len() {
                    assert_eq!(sub.touched[i], job.touched[vi]);
                    assert_eq!(sub.self_memory.row(i), job.self_memory.row(vi));
                    let (os, ol) = job.ranges[vi];
                    let (ss, sl) = sub.ranges[i];
                    assert_eq!(sl, ol);
                    for r in 0..ol {
                        assert_eq!(sub.nbr_memory.row(ss + r), job.nbr_memory.row(os + r));
                        assert_eq!(sub.nbr_edge.row(ss + r), job.nbr_edge.row(os + r));
                        assert_eq!(sub.nbr_dt[ss + r], job.nbr_dt[os + r]);
                    }
                    vi += 1;
                }
            }
        }
    }

    #[test]
    fn split_run_concat_is_bitwise_identical_to_unsplit_run() {
        let cfg = ModelConfig::tiny(3, 2);
        let mut rng = TensorRng::new(42);
        let model = TgnModel::new(cfg.clone(), &mut rng);
        let job = synthetic_job(&cfg, 13, &mut rng);
        let mut ws = Workspace::new();
        let reference = job.run(&model, &mut ws);
        for parts in [1usize, 2, 4, 5, 13, 64] {
            let merged: Vec<(NodeId, Vec<Float>)> = job
                .clone()
                .split(parts)
                .into_iter()
                .flat_map(|sub| {
                    let mut ws = Workspace::new();
                    sub.run(&model, &mut ws)
                })
                .collect();
            assert_eq!(merged, reference, "parts={parts}");
        }
    }

    #[test]
    fn split_handles_empty_and_single_vertex_jobs() {
        let cfg = ModelConfig::tiny(0, 2);
        let mut rng = TensorRng::new(3);
        let empty = synthetic_job(&cfg, 0, &mut rng);
        let parts = empty.split(4);
        assert_eq!(parts.len(), 1);
        assert!(parts[0].is_empty());
        let single = synthetic_job(&cfg, 1, &mut rng);
        let parts = single.split(4);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].len(), 1);
    }
}
