//! Self-supervised training of memory-based TGNNs on the temporal
//! link-prediction task.
//!
//! The protocol follows TGN (and the paper's Section II): the model is
//! trained to rank observed temporal edges above randomly sampled negative
//! edges using the embeddings it produces while streaming chronologically
//! through the training split.  Gradients flow through the current batch's
//! memory update (GRU), the attention aggregator, the feature transformation
//! and the decoder; the node memory read from the global table is treated as
//! a constant (no backpropagation across batches).

use crate::config::ModelConfig;
use crate::inference::InferenceEngine;
use crate::link_prediction::{evaluate_link_prediction, EvaluationResult, LinkDecoder};
use crate::memory::NodeMemory;
use crate::model::{NeighborContext, TgnModel};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use tgnn_graph::{EventBatch, FifoSampler, NodeId, TemporalGraph, TemporalSampler};
use tgnn_nn::loss::bce_with_logits;
use tgnn_nn::optim::Adam;
use tgnn_tensor::{Float, Matrix, TensorRng};

/// Training hyper-parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training split.
    pub epochs: usize,
    /// Events per training batch.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: Float,
    /// Decoder hidden dimensionality.
    pub decoder_hidden: usize,
    /// RNG seed for negative sampling and decoder initialisation.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 3,
            batch_size: 64,
            learning_rate: 1e-3,
            decoder_hidden: 32,
            seed: 1234,
        }
    }
}

/// Per-epoch training statistics.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    pub epoch: usize,
    pub mean_loss: Float,
    pub batches: usize,
}

/// A trained model bundle: model + decoder + training history.
#[derive(Debug)]
pub struct TrainedModel {
    pub model: TgnModel,
    pub decoder: LinkDecoder,
    pub history: Vec<EpochStats>,
}

/// Self-supervised trainer.
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(config: TrainConfig) -> Self {
        Self { config }
    }

    /// Trains a fresh model of the given configuration on the graph's
    /// training split and returns the trained bundle.
    pub fn train(&self, model_config: &ModelConfig, graph: &TemporalGraph) -> TrainedModel {
        let mut rng = TensorRng::new(self.config.seed);
        let mut model = TgnModel::new(model_config.clone(), &mut rng);
        if model.config.time_encoder == crate::config::TimeEncoderKind::Lut {
            let deltas = tgnn_data::delta_t::memory_delta_t(graph.events(), graph.num_nodes());
            model.calibrate_lut(&deltas);
        }
        let decoder = LinkDecoder::new(
            model_config.embedding_dim,
            self.config.decoder_hidden,
            &mut rng,
        );
        self.train_model(model, decoder, graph)
    }

    /// Trains an existing model/decoder pair (used by the distillation
    /// trainer which pre-initialises the student from the teacher).
    pub fn train_model(
        &self,
        mut model: TgnModel,
        mut decoder: LinkDecoder,
        graph: &TemporalGraph,
    ) -> TrainedModel {
        let mut rng = TensorRng::new(self.config.seed ^ 0x5eed);
        let mut optimizer = Adam::new(self.config.learning_rate);
        let mut history = Vec::new();

        for epoch in 0..self.config.epochs {
            let mut state = StreamState::new(graph.num_nodes(), &model.config);
            let mut total_loss = 0.0;
            let mut batches = 0usize;

            for chunk in graph.train_events().chunks(self.config.batch_size) {
                let batch = EventBatch::new(chunk.to_vec());
                let examples = state.prepare_examples(&batch, graph, &model, &mut rng);
                if !examples.is_empty() {
                    let loss = train_step(&mut model, &mut decoder, &examples, &mut optimizer);
                    total_loss += loss;
                    batches += 1;
                }
                state.commit(&batch, graph, &model);
            }

            history.push(EpochStats {
                epoch,
                mean_loss: if batches == 0 {
                    0.0
                } else {
                    total_loss / batches as Float
                },
                batches,
            });
        }

        TrainedModel {
            model,
            decoder,
            history,
        }
    }

    /// Evaluates a trained bundle on the graph's test split, after warming up
    /// on train+validation (as in the paper's protocol).
    pub fn evaluate(
        &self,
        bundle: &TrainedModel,
        graph: &TemporalGraph,
        batch_size: usize,
    ) -> EvaluationResult {
        let mut rng = TensorRng::new(self.config.seed ^ 0xea1);
        let mut engine = InferenceEngine::new(bundle.model.clone(), graph.num_nodes());
        engine.warm_up(graph.train_events(), graph);
        engine.warm_up(graph.val_events(), graph);
        evaluate_link_prediction(
            &mut engine,
            &bundle.decoder,
            graph.test_events(),
            graph,
            batch_size,
            &mut rng,
        )
    }
}

/// One training example: a positive temporal edge plus a negative
/// destination, with everything the model needs to recompute embeddings.
#[derive(Clone, Debug)]
pub struct TrainingExample {
    /// Source vertex message/memory inputs.
    pub src: VertexInputs,
    /// Destination vertex inputs.
    pub dst: VertexInputs,
    /// Negative-destination vertex inputs.
    pub neg: VertexInputs,
}

/// The inputs needed to compute one vertex's updated memory and embedding.
#[derive(Clone, Debug)]
pub struct VertexInputs {
    pub vertex: NodeId,
    /// Assembled message vector (empty if the vertex has no pending message).
    pub message: Vec<Float>,
    /// Memory before the update.
    pub prev_memory: Vec<Float>,
    /// Static node feature (empty when the model has none).
    pub node_feature: Vec<Float>,
    /// Sampled temporal neighbor contexts.
    pub neighbors: Vec<NeighborContext>,
}

/// Streaming state maintained during training (a light-weight version of the
/// inference engine that exposes raw inputs for gradient computation).
pub(crate) struct StreamState {
    memory: NodeMemory,
    sampler: FifoSampler,
}

impl StreamState {
    pub(crate) fn new(num_nodes: usize, config: &ModelConfig) -> Self {
        Self {
            memory: NodeMemory::for_config(num_nodes, config),
            sampler: FifoSampler::new(num_nodes, config.sampled_neighbors),
        }
    }

    /// Builds training examples for a batch without mutating state.
    pub(crate) fn prepare_examples(
        &self,
        batch: &EventBatch,
        graph: &TemporalGraph,
        model: &TgnModel,
        rng: &mut TensorRng,
    ) -> Vec<TrainingExample> {
        let mut out = Vec::new();
        let num_nodes = graph.num_nodes() as u32;
        for e in batch.events() {
            let neg_vertex = loop {
                let candidate = rng.index(num_nodes as usize) as u32;
                if candidate != e.dst {
                    break candidate;
                }
            };
            out.push(TrainingExample {
                src: self.vertex_inputs(e.src, e.timestamp, graph, model),
                dst: self.vertex_inputs(e.dst, e.timestamp, graph, model),
                neg: self.vertex_inputs(neg_vertex, e.timestamp, graph, model),
            });
        }
        out
    }

    fn vertex_inputs(
        &self,
        v: NodeId,
        query_time: f64,
        graph: &TemporalGraph,
        model: &TgnModel,
    ) -> VertexInputs {
        let cfg = &model.config;
        let prev_memory = self.memory.memory_of(v).to_vec();
        let message = match self.memory.cached_message(v) {
            Some(msg) => {
                let dt = (msg.event_time - self.memory.last_update(v)).max(0.0) as Float;
                let enc = model.encode_time(&[dt]);
                msg.assemble(enc.row(0))
            }
            None => Vec::new(),
        };
        let node_feature = if cfg.node_feature_dim > 0 {
            graph.node_feature(v).to_vec()
        } else {
            Vec::new()
        };
        let neighbors = self
            .sampler
            .sample(v, query_time, cfg.sampled_neighbors)
            .into_iter()
            .map(|entry| NeighborContext {
                memory: self.memory.memory_of(entry.neighbor).to_vec(),
                edge_feature: graph.edge_feature(entry.edge_id).to_vec(),
                delta_t: (query_time - entry.timestamp).max(0.0) as Float,
            })
            .collect();
        VertexInputs {
            vertex: v,
            message,
            prev_memory,
            node_feature,
            neighbors,
        }
    }

    /// Commits a batch to the streaming state (memory update with the
    /// *current* model, message caching, neighbor-table update).
    pub(crate) fn commit(&mut self, batch: &EventBatch, graph: &TemporalGraph, model: &TgnModel) {
        let touched = batch.touched_vertices();
        let mut latest: HashMap<NodeId, f64> = HashMap::new();
        for e in batch.events() {
            for v in e.endpoints() {
                let entry = latest.entry(v).or_insert(e.timestamp);
                if e.timestamp > *entry {
                    *entry = e.timestamp;
                }
            }
        }
        for &v in &touched {
            if let Some(msg) = self.memory.take_message(v) {
                let dt = (msg.event_time - self.memory.last_update(v)).max(0.0) as Float;
                let enc = model.encode_time(&[dt]);
                let assembled = msg.assemble(enc.row(0));
                let messages = Matrix::row_vector(&assembled);
                let memories = Matrix::row_vector(self.memory.memory_of(v));
                let updated = model.update_memory(&messages, &memories);
                self.memory.set_memory(v, updated.row(0), latest[&v]);
            }
        }
        for e in batch.events() {
            let edge_feature = graph.edge_feature(e.edge_id).to_vec();
            self.memory
                .cache_interaction_messages(e.src, e.dst, &edge_feature, e.timestamp);
            self.sampler.observe(e);
        }
    }
}

/// Computes the embedding of one vertex from raw [`VertexInputs`] (memory
/// update included when a message is pending), returning the caches needed
/// for backward.
pub(crate) struct ForwardPass {
    pub(crate) embedding: Vec<Float>,
    gru_cache: Option<(Matrix, Matrix, tgnn_nn::gru::GruCache)>,
    emb_cache: crate::model::EmbeddingCache,
}

pub(crate) fn forward_vertex(model: &TgnModel, inputs: &VertexInputs) -> ForwardPass {
    let cfg = &model.config;
    let (memory, gru_cache) = if inputs.message.is_empty() {
        (inputs.prev_memory.clone(), None)
    } else {
        let messages = Matrix::row_vector(&inputs.message);
        let memories = Matrix::row_vector(&inputs.prev_memory);
        let (updated, cache) = model.update_memory_cached(&messages, &memories);
        (updated.row_to_vec(0), Some((messages, memories, cache)))
    };
    let node_feature = if cfg.node_feature_dim > 0 {
        Some(inputs.node_feature.as_slice())
    } else {
        None
    };
    let (out, emb_cache) = model.compute_embedding_cached(&memory, node_feature, &inputs.neighbors);
    ForwardPass {
        embedding: out.embedding,
        gru_cache,
        emb_cache,
    }
}

pub(crate) fn backward_vertex(model: &mut TgnModel, pass: &ForwardPass, grad_embedding: &[Float]) {
    let grad_memory = model.backward_embedding(&pass.emb_cache, grad_embedding);
    if let Some((messages, memories, cache)) = &pass.gru_cache {
        let grad_new_hidden = Matrix::row_vector(&grad_memory);
        let (_grad_msg, _grad_prev) = model.gru.backward(cache, &grad_new_hidden);
        let _ = (messages, memories);
    }
}

/// One optimisation step over a batch of training examples.  Returns the
/// batch loss.
pub(crate) fn train_step(
    model: &mut TgnModel,
    decoder: &mut LinkDecoder,
    examples: &[TrainingExample],
    optimizer: &mut Adam,
) -> Float {
    let mut logits = Vec::with_capacity(2 * examples.len());
    let mut targets = Vec::with_capacity(2 * examples.len());
    let mut passes = Vec::with_capacity(examples.len());

    for ex in examples {
        let src_pass = forward_vertex(model, &ex.src);
        let dst_pass = forward_vertex(model, &ex.dst);
        let neg_pass = forward_vertex(model, &ex.neg);
        let (pos_score, pos_cache) = decoder.score_cached(&src_pass.embedding, &dst_pass.embedding);
        let (neg_score, neg_cache) = decoder.score_cached(&src_pass.embedding, &neg_pass.embedding);
        logits.push(pos_score);
        targets.push(1.0);
        logits.push(neg_score);
        targets.push(0.0);
        passes.push((src_pass, dst_pass, neg_pass, pos_cache, neg_cache));
    }

    let (loss, grad_logits) = bce_with_logits(&logits, &targets);

    for (i, (src_pass, dst_pass, neg_pass, pos_cache, neg_cache)) in passes.iter().enumerate() {
        let grad_pos = grad_logits[2 * i];
        let grad_neg = grad_logits[2 * i + 1];
        let (g_src_pos, g_dst) = decoder.backward(pos_cache, grad_pos);
        let (g_src_neg, g_neg) = decoder.backward(neg_cache, grad_neg);
        let g_src: Vec<Float> = g_src_pos
            .iter()
            .zip(&g_src_neg)
            .map(|(&a, &b)| a + b)
            .collect();
        backward_vertex(model, src_pass, &g_src);
        backward_vertex(model, dst_pass, &g_dst);
        backward_vertex(model, neg_pass, &g_neg);
    }

    let mut params = model.params_mut();
    params.extend(decoder.params_mut());
    optimizer.step(&mut params);
    loss
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelConfig, OptimizationVariant};
    use tgnn_data::{generate, tiny};

    fn tiny_train_config() -> TrainConfig {
        TrainConfig {
            epochs: 2,
            batch_size: 40,
            learning_rate: 5e-3,
            decoder_hidden: 16,
            seed: 3,
        }
    }

    #[test]
    fn training_reduces_loss() {
        let graph = generate(&tiny(31));
        let cfg = ModelConfig::tiny(graph.node_feature_dim(), graph.edge_feature_dim());
        let trainer = Trainer::new(tiny_train_config());
        let bundle = trainer.train(&cfg, &graph);
        assert_eq!(bundle.history.len(), 2);
        let first = bundle.history.first().unwrap().mean_loss;
        let last = bundle.history.last().unwrap().mean_loss;
        assert!(last < first, "loss did not decrease: {first} -> {last}");
        assert!(last.is_finite());
    }

    #[test]
    fn trained_model_beats_untrained_on_ap() {
        let graph = generate(&tiny(37));
        let cfg = ModelConfig::tiny(graph.node_feature_dim(), graph.edge_feature_dim());
        let trainer = Trainer::new(TrainConfig {
            epochs: 3,
            ..tiny_train_config()
        });

        // Untrained reference.
        let mut rng = TensorRng::new(9);
        let untrained = TrainedModel {
            model: TgnModel::new(cfg.clone(), &mut rng),
            decoder: LinkDecoder::new(cfg.embedding_dim, 16, &mut rng),
            history: Vec::new(),
        };
        let untrained_ap = trainer.evaluate(&untrained, &graph, 32).average_precision;

        let bundle = trainer.train(&cfg, &graph);
        let trained_ap = trainer.evaluate(&bundle, &graph, 32).average_precision;
        assert!(
            trained_ap > untrained_ap - 0.02,
            "training made AP collapse: {untrained_ap} -> {trained_ap}"
        );
        assert!(
            trained_ap > 0.5,
            "trained AP should beat random ranking: {trained_ap}"
        );
    }

    #[test]
    fn simplified_variant_trains_too() {
        let graph = generate(&tiny(41));
        let cfg = ModelConfig::tiny(graph.node_feature_dim(), graph.edge_feature_dim())
            .with_variant(OptimizationVariant::NpMedium);
        let trainer = Trainer::new(tiny_train_config());
        let bundle = trainer.train(&cfg, &graph);
        assert!(bundle.history.iter().all(|h| h.mean_loss.is_finite()));
        let result = trainer.evaluate(&bundle, &graph, 32);
        assert!((0.0..=1.0).contains(&result.average_precision));
    }
}
