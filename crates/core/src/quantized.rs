//! The int8 quantized execution path — calibration driver, quantized model
//! weights, and the batched GNN/memory stages on the packed int8 GEMM.
//!
//! The paper's accelerator runs a fixed-point datapath; this module is its
//! CPU counterpart.  The flow mirrors post-training quantization on real
//! hardware:
//!
//! 1. **Calibrate** — [`calibrate_activations`] replays a sample stream
//!    through the f32 engine ([`ExecMode::Batched`](crate::ExecMode)) with a
//!    `tgnn_quant::ActivationRecorder` attached to the batched forward
//!    paths, recording the input range of every projection that will be
//!    quantized.
//! 2. **Quantize** — [`QuantizedTgn::from_model`] snapshots per-row int8
//!    copies of the GRU / attention / node-projection / FTM weights
//!    (pre-packed into the `maddubs` panel layout) together with the
//!    calibrated static activation scales.
//! 3. **Serve** — attach the result with
//!    [`TgnModel::attach_quantized`](crate::TgnModel::attach_quantized) (or
//!    [`InferenceEngine::with_quantized`](crate::InferenceEngine::with_quantized)):
//!    every *batched* entry point — `compute_embeddings_batch`,
//!    `update_memory_ws`, and therefore the whole `tgnn-serve` streaming
//!    pipeline — transparently runs the int8 kernels.  `ExecMode::Serial`
//!    always stays f32 and remains the accuracy reference.
//!
//! Everything outside the large projections (softmax, top-k pruning, GRU
//! gate nonlinearities, time encodings, per-neighbor logit arithmetic) stays
//! in f32, matching the co-design's split between MAC arrays and the scalar
//! epilogue logic.
//!
//! The whole calibrate → quantize → serve workflow, end to end:
//!
//! ```
//! use std::sync::Arc;
//! use tgnn_core::{quantize_model, ExecMode, InferenceEngine, ModelConfig, TgnModel};
//! use tgnn_quant::QuantConfig;
//! use tgnn_tensor::stats::cosine_agreement;
//! # let graph = tgnn_data::generate(&tgnn_data::tiny(9));
//! # let cfg = ModelConfig::tiny(graph.node_feature_dim(), graph.edge_feature_dim());
//! # let model = TgnModel::new(cfg, &mut tgnn_tensor::TensorRng::new(9));
//! // 1 + 2. Calibrate activation ranges by replaying a sample stream
//! //        through the f32 engine, then snapshot the int8 weight set.
//! let calibration = &graph.events()[..128.min(graph.num_events())];
//! let q = Arc::new(quantize_model(
//!     &model, &graph, &[], calibration, 64, QuantConfig::default(),
//! ));
//! // 3. Serve int8: attach the weights; every batched entry point (and the
//! //    tgnn-serve pipeline, unchanged) picks the packed int8 kernels up.
//! let mut engine = InferenceEngine::new(model.clone(), graph.num_nodes())
//!     .with_quantized(q);
//! assert_eq!(engine.mode(), ExecMode::Quantized);
//! // Accuracy is measured, never assumed: compare against the f32 serial
//! // reference on the same batches (CI gates this at cosine ≥ 0.999 on the
//! // calibrated harness config — see the quant_gate binary).
//! let mut reference = InferenceEngine::new(model.clone(), graph.num_nodes())
//!     .with_mode(ExecMode::Serial);
//! let batch = tgnn_graph::EventBatch::new(graph.events()[..64].to_vec());
//! let int8 = engine.process_batch(&batch, &graph);
//! let f32_out = reference.process_batch(&batch, &graph);
//! for ((v, a), (_, b)) in int8.embeddings.iter().zip(&f32_out.embeddings) {
//!     assert!(cosine_agreement(a, b) > 0.9, "vertex {v} strayed");
//! }
//! ```

use crate::config::AttentionKind;
use crate::inference::{ExecMode, InferenceEngine};
use crate::model::{weighted_rows_into, EmbeddingJob, EmbeddingOutput, TgnModel};
use tgnn_graph::{InteractionEvent, TemporalGraph};
use tgnn_quant::{ActivationRanges, ActivationRecorder, QuantConfig, QuantizedLinear};
use tgnn_tensor::ops::{sigmoid, softmax, tanh, top_k_indices};
use tgnn_tensor::{Float, Matrix, Workspace};

/// Observer / calibration keys of every quantized layer input.  The names
/// tie the recorder hooks in the f32 batched paths to the scales
/// [`QuantizedTgn::from_model`] looks up.
pub mod layers {
    /// GRU message input (all three input-side projections share it).
    pub const GRU_INPUT: &str = "gru.input";
    /// GRU hidden-state input (all three hidden-side projections share it).
    pub const GRU_HIDDEN: &str = "gru.hidden";
    /// Stacked neighbor inputs `[s_j || e_ij || Φ(Δt_j)]` — input of the
    /// attention key/value projections.
    pub const ATTN_NEIGHBOR: &str = "attn.neighbor";
    /// Query inputs `[f'_i || Φ(0)]` — input of the vanilla query projection.
    pub const ATTN_QUERY: &str = "attn.query";
    /// FTM input `[h_agg || f'_i]`.
    pub const FTM_INPUT: &str = "ftm.input";
    /// Static node features — input of the node projection.
    pub const NODE_PROJ_INPUT: &str = "node_proj.input";
}

/// Int8 GRU: the six gate projections quantized, gate nonlinearities and the
/// convex merge in f32 — mirroring `GruCell::forward_ws` exactly apart from
/// the GEMM numeric.
#[derive(Clone, Debug)]
pub struct QuantizedGru {
    w_ir: QuantizedLinear,
    w_hr: QuantizedLinear,
    w_iz: QuantizedLinear,
    w_hz: QuantizedLinear,
    w_in: QuantizedLinear,
    w_hn: QuantizedLinear,
}

impl QuantizedGru {
    fn from_model(model: &TgnModel, ranges: &ActivationRanges) -> Self {
        let s_in = ranges.scale(layers::GRU_INPUT);
        let s_hid = ranges.scale(layers::GRU_HIDDEN);
        Self {
            w_ir: QuantizedLinear::from_linear(&model.gru.w_ir, s_in),
            w_hr: QuantizedLinear::from_linear(&model.gru.w_hr, s_hid),
            w_iz: QuantizedLinear::from_linear(&model.gru.w_iz, s_in),
            w_hz: QuantizedLinear::from_linear(&model.gru.w_hz, s_hid),
            w_in: QuantizedLinear::from_linear(&model.gru.w_in, s_in),
            w_hn: QuantizedLinear::from_linear(&model.gru.w_hn, s_hid),
        }
    }

    /// The GRU forward pass with quantized gate projections (same elementwise
    /// order as the f32 path; the returned matrix comes from the workspace).
    pub fn forward_ws(&self, input: &Matrix, hidden: &Matrix, ws: &mut Workspace) -> Matrix {
        assert_eq!(input.rows(), hidden.rows(), "QuantizedGru: batch mismatch");

        let mut r = self.w_ir.forward_ws(input, ws);
        let hr = self.w_hr.forward_ws(hidden, ws);
        for (a, &b) in r.as_mut_slice().iter_mut().zip(hr.as_slice()) {
            *a = sigmoid(*a + b);
        }
        ws.recycle_matrix(hr);

        let mut z = self.w_iz.forward_ws(input, ws);
        let hz = self.w_hz.forward_ws(hidden, ws);
        for (a, &b) in z.as_mut_slice().iter_mut().zip(hz.as_slice()) {
            *a = sigmoid(*a + b);
        }
        ws.recycle_matrix(hz);

        let mut n = self.w_in.forward_ws(input, ws);
        let hn_lin = self.w_hn.forward_ws(hidden, ws);
        for ((a, &ri), &h) in n
            .as_mut_slice()
            .iter_mut()
            .zip(r.as_slice())
            .zip(hn_lin.as_slice())
        {
            *a = tanh(*a + ri * h);
        }
        ws.recycle_matrix(hn_lin);
        ws.recycle_matrix(r);

        for ((a, &zi), &si) in n
            .as_mut_slice()
            .iter_mut()
            .zip(z.as_slice())
            .zip(hidden.as_slice())
        {
            *a = (1.0 - zi) * *a + zi * si;
        }
        ws.recycle_matrix(z);
        n
    }
}

/// The quantized weight set of a [`TgnModel`]: every large projection as a
/// [`QuantizedLinear`] (per-row int8 weights, pre-packed panels, calibrated
/// activation scales).  Attach to a model with
/// [`TgnModel::attach_quantized`](crate::TgnModel::attach_quantized).
#[derive(Clone, Debug)]
pub struct QuantizedTgn {
    /// The quantization configuration the weights were built with.
    pub quant_config: QuantConfig,
    /// The calibrated activation ranges (kept for reporting).
    pub ranges: ActivationRanges,
    gru: Option<QuantizedGru>,
    node_proj: Option<QuantizedLinear>,
    /// Vanilla attention projections (query, key) — `None` for simplified.
    w_q: Option<QuantizedLinear>,
    w_k: Option<QuantizedLinear>,
    /// Value projection (vanilla or simplified).
    w_v: QuantizedLinear,
    output: QuantizedLinear,
}

impl QuantizedTgn {
    /// Quantizes a model's weights given calibrated activation ranges.
    ///
    /// # Panics
    /// Panics if a required layer has no calibration data (the sample stream
    /// never exercised it).
    pub fn from_model(model: &TgnModel, ranges: &ActivationRanges, config: QuantConfig) -> Self {
        let nbr_scale = ranges.scale(layers::ATTN_NEIGHBOR);
        let (w_q, w_k, w_v) = match model.config.attention {
            AttentionKind::Vanilla => {
                let att = model.vanilla.as_ref().expect("vanilla attention missing");
                let q_scale = ranges.scale(layers::ATTN_QUERY);
                (
                    Some(QuantizedLinear::from_linear(&att.w_q, q_scale)),
                    Some(QuantizedLinear::from_linear(&att.w_k, nbr_scale)),
                    QuantizedLinear::from_linear(&att.w_v, nbr_scale),
                )
            }
            AttentionKind::Simplified => {
                let att = model
                    .simplified
                    .as_ref()
                    .expect("simplified attention missing");
                (
                    None,
                    None,
                    QuantizedLinear::from_linear(&att.w_v, nbr_scale),
                )
            }
        };
        Self {
            quant_config: config,
            gru: config
                .quantize_gru
                .then(|| QuantizedGru::from_model(model, ranges)),
            node_proj: model.node_proj.as_ref().map(|proj| {
                QuantizedLinear::from_linear(proj, ranges.scale(layers::NODE_PROJ_INPUT))
            }),
            w_q,
            w_k,
            w_v,
            output: QuantizedLinear::from_linear(&model.output, ranges.scale(layers::FTM_INPUT)),
            ranges: ranges.clone(),
        }
    }

    /// The quantized GRU, when the configuration quantizes the memory path.
    pub fn gru(&self) -> Option<&QuantizedGru> {
        self.gru.as_ref()
    }

    /// The batched GNN stage on the int8 kernels — the structural mirror of
    /// `TgnModel::compute_embeddings_batch` with every large projection
    /// replaced by its [`QuantizedLinear`].  Batch assembly, logits, softmax,
    /// pruning, and aggregation stay f32.
    ///
    /// # Panics
    /// Panics on dimension mismatches or when a job exceeds
    /// `config.sampled_neighbors`.
    pub fn compute_embeddings_batch(
        &self,
        model: &TgnModel,
        jobs: &[EmbeddingJob<'_>],
        ws: &mut Workspace,
    ) -> Vec<EmbeddingOutput> {
        let t = jobs.len();
        if t == 0 {
            return Vec::new();
        }
        let cfg = &model.config;
        let mem_dim = cfg.memory_dim;
        let nbr_in = cfg.neighbor_input_dim();

        // --- f'_i = s_i (+ W_s f_i + b_s), node projection quantized.
        let mut f_prime = ws.take_matrix(t, mem_dim);
        for (i, job) in jobs.iter().enumerate() {
            assert_eq!(job.memory.len(), mem_dim, "target memory dim mismatch");
            assert!(
                job.neighbors.len() <= cfg.sampled_neighbors,
                "more neighbors than the sampling budget"
            );
            f_prime.row_mut(i).copy_from_slice(job.memory);
        }
        if let Some(proj) = &self.node_proj {
            let mut features = ws.take_matrix(t, cfg.node_feature_dim);
            for (i, job) in jobs.iter().enumerate() {
                let feat = job
                    .node_feature
                    .expect("model expects node features but none were supplied");
                features.row_mut(i).copy_from_slice(feat);
            }
            let projected = proj.forward_ws(&features, ws);
            for (a, &b) in f_prime.as_mut_slice().iter_mut().zip(projected.as_slice()) {
                *a += b;
            }
            ws.recycle_matrix(projected);
            ws.recycle_matrix(features);
        }

        // --- Stacked neighbor inputs, identical assembly to the f32 path.
        let total_n: usize = jobs.iter().map(|j| j.neighbors.len()).sum();
        let mut offsets = Vec::with_capacity(t);
        let mut nbr_input = ws.take_matrix(total_n, nbr_in);
        let mut dts_all = ws.take(total_n);
        {
            let mut row = 0;
            for job in jobs {
                offsets.push(row);
                for ctx in job.neighbors {
                    assert_eq!(ctx.memory.len(), mem_dim, "neighbor memory dim mismatch");
                    assert_eq!(
                        ctx.edge_feature.len(),
                        cfg.edge_feature_dim,
                        "neighbor edge feature dim mismatch"
                    );
                    let dst = nbr_input.row_mut(row);
                    dst[..mem_dim].copy_from_slice(ctx.memory);
                    dst[mem_dim..mem_dim + cfg.edge_feature_dim].copy_from_slice(ctx.edge_feature);
                    dts_all[row] = ctx.delta_t;
                    row += 1;
                }
            }
        }
        if total_n > 0 {
            let mut enc = ws.take_matrix(total_n, cfg.time_dim);
            model.encode_time_into(&dts_all, &mut enc);
            for row in 0..total_n {
                nbr_input.row_mut(row)[mem_dim + cfg.edge_feature_dim..]
                    .copy_from_slice(enc.row(row));
            }
            ws.recycle_matrix(enc);
        }

        // --- Aggregate per attention kind, projections on int8.
        let mut agg = ws.take_matrix(t, mem_dim);
        let mut logits_out: Vec<Vec<Float>> = Vec::with_capacity(t);
        let mut selected_out: Vec<Vec<usize>> = Vec::with_capacity(t);
        match cfg.attention {
            AttentionKind::Vanilla => {
                let w_q = self.w_q.as_ref().expect("quantized w_q missing");
                let w_k = self.w_k.as_ref().expect("quantized w_k missing");
                let mut zero_enc = ws.take_matrix(1, cfg.time_dim);
                model.encode_time_into(&[0.0], &mut zero_enc);
                let mut query_input = ws.take_matrix(t, cfg.query_input_dim());
                for i in 0..t {
                    let dst = query_input.row_mut(i);
                    dst[..mem_dim].copy_from_slice(f_prime.row(i));
                    dst[mem_dim..].copy_from_slice(zero_enc.row(0));
                }
                let q_all = w_q.forward_ws(&query_input, ws);
                let k_all = w_k.forward_ws(&nbr_input, ws);
                let v_all = self.w_v.forward_ws(&nbr_input, ws);
                for (i, job) in jobs.iter().enumerate() {
                    let n = job.neighbors.len();
                    if n == 0 {
                        logits_out.push(Vec::new());
                        selected_out.push(Vec::new());
                        continue;
                    }
                    let off = offsets[i];
                    let scale = 1.0 / (n as Float).sqrt();
                    let logits: Vec<Float> = (0..n)
                        .map(|j| tgnn_tensor::gemm::dot(q_all.row(i), k_all.row(off + j)) * scale)
                        .collect();
                    let weights = softmax(&logits);
                    weighted_rows_into(&v_all, off, &weights, agg.row_mut(i));
                    logits_out.push(logits);
                    selected_out.push((0..n).collect());
                }
                ws.recycle_matrix(v_all);
                ws.recycle_matrix(k_all);
                ws.recycle_matrix(q_all);
                ws.recycle_matrix(query_input);
                ws.recycle_matrix(zero_enc);
            }
            AttentionKind::Simplified => {
                let att = model
                    .simplified
                    .as_ref()
                    .expect("simplified attention missing");
                let budget = cfg.neighbor_budget;
                let slots = att.slots();
                // The slots×slots logit arithmetic is tiny — it stays f32 so
                // the top-k pruning decisions match the f32 path as closely
                // as possible.
                let mut scaled = ws.take(slots);
                let mut offsets_buf = ws.take(slots);
                let mut weights_out: Vec<Vec<Float>> = Vec::with_capacity(t);
                let mut total_selected = 0usize;
                for job in jobs {
                    let n = job.neighbors.len();
                    scaled.iter_mut().for_each(|x| *x = 0.0);
                    for (slot, ctx) in scaled.iter_mut().zip(job.neighbors) {
                        *slot = ctx.delta_t / att.time_scale();
                    }
                    tgnn_tensor::gemm::matvec_into(&att.w_t.value, &scaled, &mut offsets_buf);
                    let logits: Vec<Float> = (0..n)
                        .map(|j| att.a.value[(0, j)] + offsets_buf[j])
                        .collect();
                    let selected = top_k_indices(&logits, budget.min(n));
                    let selected_logits: Vec<Float> = selected.iter().map(|&j| logits[j]).collect();
                    let weights = softmax(&selected_logits);
                    total_selected += selected.len();
                    logits_out.push(logits);
                    selected_out.push(selected);
                    weights_out.push(weights);
                }
                ws.recycle(offsets_buf);
                ws.recycle(scaled);

                let mut sel_input = ws.take_matrix(total_selected, nbr_in);
                {
                    let mut row = 0;
                    for (i, selected) in selected_out.iter().enumerate() {
                        for &j in selected {
                            sel_input
                                .row_mut(row)
                                .copy_from_slice(nbr_input.row(offsets[i] + j));
                            row += 1;
                        }
                    }
                }
                let v_sel = self.w_v.forward_ws(&sel_input, ws);
                let mut row = 0;
                for (i, weights) in weights_out.iter().enumerate() {
                    weighted_rows_into(&v_sel, row, weights, agg.row_mut(i));
                    row += weights.len();
                }
                ws.recycle_matrix(v_sel);
                ws.recycle_matrix(sel_input);
            }
        }

        // --- FTM on int8 over `[h_agg || f'_i]`.
        let mut concat = ws.take_matrix(t, 2 * mem_dim);
        for i in 0..t {
            let dst = concat.row_mut(i);
            dst[..mem_dim].copy_from_slice(agg.row(i));
            dst[mem_dim..].copy_from_slice(f_prime.row(i));
        }
        let out_mat = self.output.forward_ws(&concat, ws);

        let mut outputs = Vec::with_capacity(t);
        for (i, (logits, selected)) in logits_out.into_iter().zip(selected_out).enumerate() {
            outputs.push(EmbeddingOutput {
                embedding: out_mat.row_to_vec(i),
                attention_logits: logits,
                used_neighbors: selected,
            });
        }

        ws.recycle_matrix(out_mat);
        ws.recycle_matrix(concat);
        ws.recycle_matrix(agg);
        ws.recycle(dts_all);
        ws.recycle_matrix(nbr_input);
        ws.recycle_matrix(f_prime);
        outputs
    }
}

/// Runs the calibration pass: replays `warm_up` through the vertex state and
/// then streams `sample` through the f32 engine in [`ExecMode::Batched`]
/// with an activation recorder attached, returning the recorded ranges.
///
/// The engine replica used here starts from fresh vertex state, exactly like
/// the serving engine will, so the recorded ranges cover the cold-start
/// transient as well as the steady state.
pub fn calibrate_activations(
    model: &TgnModel,
    graph: &TemporalGraph,
    warm_up: &[InteractionEvent],
    sample: &[InteractionEvent],
    batch_size: usize,
) -> ActivationRecorder {
    let mut f32_model = model.clone();
    f32_model.detach_quantized();
    let mut engine =
        InferenceEngine::new(f32_model, graph.num_nodes()).with_mode(ExecMode::Batched);
    engine.set_observer(Box::new(ActivationRecorder::new()));
    engine.warm_up(warm_up, graph);
    let _ = engine.run_stream(sample, graph, batch_size);
    *engine.take_observer().expect("observer attached above")
}

/// Calibrate + quantize in one step: the post-training-quantization
/// entry point used by the benches and the serve path.
pub fn quantize_model(
    model: &TgnModel,
    graph: &TemporalGraph,
    warm_up: &[InteractionEvent],
    sample: &[InteractionEvent],
    batch_size: usize,
    config: QuantConfig,
) -> QuantizedTgn {
    let recorder = calibrate_activations(model, graph, warm_up, sample, batch_size);
    let ranges = recorder.finish(&config);
    QuantizedTgn::from_model(model, &ranges, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelConfig, OptimizationVariant, TimeEncoderKind};
    use std::sync::Arc;
    use tgnn_data::{generate, tiny};
    use tgnn_graph::EventBatch;
    use tgnn_tensor::stats::{cosine_agreement, max_abs_diff};
    use tgnn_tensor::TensorRng;

    fn setup(variant: OptimizationVariant) -> (TgnModel, TemporalGraph) {
        let graph = generate(&tiny(31));
        let cfg = ModelConfig::tiny(graph.node_feature_dim(), graph.edge_feature_dim())
            .with_variant(variant);
        let mut rng = TensorRng::new(5);
        let mut model = TgnModel::new(cfg, &mut rng);
        if model.config.time_encoder == TimeEncoderKind::Lut {
            let deltas = tgnn_data::delta_t::memory_delta_t(graph.events(), graph.num_nodes());
            model.calibrate_lut(&deltas);
        }
        (model, graph)
    }

    #[test]
    fn calibration_records_every_quantized_layer() {
        for variant in [OptimizationVariant::Baseline, OptimizationVariant::NpMedium] {
            let (model, graph) = setup(variant);
            let events = graph.events();
            let rec = calibrate_activations(&model, &graph, &events[..100], &events[100..400], 40);
            let ranges = rec.finish(&QuantConfig::default());
            for layer in [
                layers::GRU_INPUT,
                layers::GRU_HIDDEN,
                layers::ATTN_NEIGHBOR,
                layers::FTM_INPUT,
            ] {
                assert!(ranges.contains(layer), "{variant:?}: missing {layer}");
                assert!(ranges.scale(layer) > 0.0);
            }
            if variant == OptimizationVariant::Baseline {
                assert!(ranges.contains(layers::ATTN_QUERY));
            }
        }
    }

    #[test]
    fn quantized_stream_tracks_f32_embeddings_closely() {
        for variant in [OptimizationVariant::Baseline, OptimizationVariant::NpMedium] {
            let (model, graph) = setup(variant);
            let events = graph.events();
            let (warm, sample) = (&events[..150], &events[150..500]);
            let q = Arc::new(quantize_model(
                &model,
                &graph,
                warm,
                sample,
                50,
                QuantConfig::default(),
            ));

            // f32 reference.
            let mut f32_engine =
                InferenceEngine::new(model.clone(), graph.num_nodes()).with_mode(ExecMode::Batched);
            f32_engine.warm_up(warm, &graph);
            // Quantized run over the same stream.
            let mut q_engine =
                InferenceEngine::new(model.clone(), graph.num_nodes()).with_quantized(q);
            assert_eq!(q_engine.mode(), ExecMode::Quantized);
            q_engine.warm_up(warm, &graph);

            let mut worst_cos: Float = 1.0;
            let mut worst_err: Float = 0.0;
            let mut cos_sum = 0.0f64;
            let mut count = 0usize;
            for chunk in sample.chunks(50) {
                let batch = EventBatch::new(chunk.to_vec());
                let reference = f32_engine.process_batch(&batch, &graph);
                let quantized = q_engine.process_batch(&batch, &graph);
                assert_eq!(reference.embeddings.len(), quantized.embeddings.len());
                for ((v_a, e_a), (v_b, e_b)) in
                    reference.embeddings.iter().zip(&quantized.embeddings)
                {
                    assert_eq!(v_a, v_b, "{variant:?}: vertex order diverged");
                    let cos = cosine_agreement(e_a, e_b);
                    worst_cos = worst_cos.min(cos);
                    cos_sum += cos as f64;
                    count += 1;
                    worst_err = worst_err.max(max_abs_diff(e_a, e_b));
                }
            }
            // The softmax makes vanilla attention more sensitive to int8
            // logit error than the pruned simplified path, so the worst-case
            // bar differs per variant; the mean must be tight for both.
            let worst_bar = match variant {
                OptimizationVariant::Baseline => 0.995,
                _ => 0.999,
            };
            assert!(
                worst_cos >= worst_bar,
                "{variant:?}: worst embedding cosine {worst_cos} < {worst_bar} (max abs err {worst_err})"
            );
            let mean_cos = cos_sum / count as f64;
            assert!(
                mean_cos >= 0.9995,
                "{variant:?}: mean embedding cosine {mean_cos}"
            );
            assert!(q_engine.commit_log().is_clean());
        }
    }

    #[test]
    fn quantized_path_is_deterministic() {
        let (model, graph) = setup(OptimizationVariant::NpMedium);
        let events = graph.events();
        let q = Arc::new(quantize_model(
            &model,
            &graph,
            &events[..100],
            &events[100..300],
            50,
            QuantConfig::default(),
        ));
        let run = |q: Arc<QuantizedTgn>| {
            let mut engine =
                InferenceEngine::new(model.clone(), graph.num_nodes()).with_quantized(q);
            engine.warm_up(&events[..100], &graph);
            let mut all = Vec::new();
            for chunk in events[100..400].chunks(40) {
                all.extend(
                    engine
                        .process_batch(&EventBatch::new(chunk.to_vec()), &graph)
                        .embeddings,
                );
            }
            all
        };
        assert_eq!(
            run(q.clone()),
            run(q),
            "quantized path must be deterministic"
        );
    }

    #[test]
    fn f32_gru_config_keeps_memory_path_in_f32() {
        let (model, graph) = setup(OptimizationVariant::NpMedium);
        let events = graph.events();
        let cfg = QuantConfig {
            quantize_gru: false,
            ..QuantConfig::default()
        };
        let q = quantize_model(&model, &graph, &events[..100], &events[100..300], 50, cfg);
        assert!(q.gru().is_none());

        // With the GRU in f32, the memory trajectories of the quantized and
        // f32 engines are bit-identical (only the GNN stage differs).
        let mut f32_engine =
            InferenceEngine::new(model.clone(), graph.num_nodes()).with_mode(ExecMode::Batched);
        let mut q_engine =
            InferenceEngine::new(model.clone(), graph.num_nodes()).with_quantized(Arc::new(q));
        f32_engine.warm_up(&events[..300], &graph);
        q_engine.warm_up(&events[..300], &graph);
        for v in 0..graph.num_nodes() as u32 {
            assert_eq!(
                f32_engine.memory().memory_of(v),
                q_engine.memory().memory_of(v),
                "memory of vertex {v} diverged with an f32 GRU"
            );
        }
    }
}
