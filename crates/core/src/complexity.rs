//! Operation accounting: multiply-accumulates (MACs) and external-memory
//! accesses (MEMs) per inference stage — the quantities reported in Table I
//! and Table II of the paper.
//!
//! MEMs are counted in data words (one word = one feature element) read from
//! or written to the external vertex tables (memory, mailbox, neighbor table,
//! node/edge features).  Learnable parameters are assumed to be resident
//! on-chip, as in the paper's accounting.

use crate::config::{AttentionKind, ModelConfig, TimeEncoderKind};
use crate::profiling::Stage;
use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// MAC and MEM counts for one stage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounts {
    /// Multiply-accumulate operations.
    pub macs: u64,
    /// External-memory accesses, in data words.
    pub mems: u64,
}

impl Add for OpCounts {
    type Output = OpCounts;
    fn add(self, rhs: OpCounts) -> OpCounts {
        OpCounts {
            macs: self.macs + rhs.macs,
            mems: self.mems + rhs.mems,
        }
    }
}

impl AddAssign for OpCounts {
    fn add_assign(&mut self, rhs: OpCounts) {
        self.macs += rhs.macs;
        self.mems += rhs.mems;
    }
}

/// Per-stage operation counts (sample / memory / GNN / update), the rows of
/// Table I.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageOps {
    pub sample: OpCounts,
    pub memory: OpCounts,
    pub gnn: OpCounts,
    pub update: OpCounts,
}

impl StageOps {
    /// Totals across the four stages.
    pub fn total(&self) -> OpCounts {
        self.sample + self.memory + self.gnn + self.update
    }

    /// Mutable access to one stage's counter.
    pub fn stage_mut(&mut self, stage: Stage) -> &mut OpCounts {
        match stage {
            Stage::Sample => &mut self.sample,
            Stage::Memory => &mut self.memory,
            Stage::Gnn => &mut self.gnn,
            Stage::Update => &mut self.update,
        }
    }

    /// Read access to one stage's counter.
    pub fn stage(&self, stage: Stage) -> OpCounts {
        match stage {
            Stage::Sample => self.sample,
            Stage::Memory => self.memory,
            Stage::Gnn => self.gnn,
            Stage::Update => self.update,
        }
    }
}

impl Add for StageOps {
    type Output = StageOps;
    fn add(self, rhs: StageOps) -> StageOps {
        StageOps {
            sample: self.sample + rhs.sample,
            memory: self.memory + rhs.memory,
            gnn: self.gnn + rhs.gnn,
            update: self.update + rhs.update,
        }
    }
}

impl AddAssign for StageOps {
    fn add_assign(&mut self, rhs: StageOps) {
        *self = *self + rhs;
    }
}

/// Analytical per-embedding operation counts for a model configuration —
/// the closed-form version used by Table I/II and by the hardware
/// performance model.  The inference engine also counts operations as it
/// executes; tests check the two agree.
pub fn per_embedding_ops(config: &ModelConfig) -> StageOps {
    let mem = config.memory_dim as u64;
    let time = config.time_dim as u64;
    let efeat = config.edge_feature_dim as u64;
    let nfeat = config.node_feature_dim as u64;
    let msg = config.message_dim() as u64;
    let sampled = config.sampled_neighbors as u64;
    let budget = config.neighbor_budget as u64;
    let nbr_in = config.neighbor_input_dim() as u64;
    let q_in = config.query_input_dim() as u64;
    let emb = config.embedding_dim as u64;

    let mut ops = StageOps::default();

    // --- sample: read the neighbor table (index, edge id, timestamp per
    // neighbor slot); no arithmetic.
    ops.sample.mems = sampled * 3;

    // --- memory: read the cached message + own memory, run the time encoder
    // for the message Δt, and the GRU.
    ops.memory.mems = msg + mem;
    let time_macs = match config.time_encoder {
        TimeEncoderKind::Cos => 2 * time,
        TimeEncoderKind::Lut => 0,
    };
    // GRU: three input-side and three hidden-side projections.
    ops.memory.macs = time_macs + 3 * msg * mem + 3 * mem * mem;

    // --- GNN: read the neighbor memories + edge features (+ own node
    // feature), encode neighbor Δt, run the attention aggregator and the
    // output feature transformation.
    let fetched_neighbors = match config.attention {
        // Vanilla attention must fetch every sampled neighbor before scores
        // are known.
        AttentionKind::Vanilla => sampled,
        // Simplified attention knows the scores first and fetches only the
        // pruned set.
        AttentionKind::Simplified => budget,
    };
    ops.gnn.mems = fetched_neighbors * (mem + efeat) + nfeat;
    let neighbor_time_macs = match config.time_encoder {
        TimeEncoderKind::Cos => 2 * time * fetched_neighbors,
        TimeEncoderKind::Lut => 0,
    };
    let attention_macs = match config.attention {
        AttentionKind::Vanilla => {
            // q, K, V projections + score dot products + weighted sum.
            q_in * mem + sampled * nbr_in * mem * 2 + sampled * mem + sampled * mem
        }
        AttentionKind::Simplified => {
            // W_t·Δt + value projections of the pruned set + weighted sum.
            sampled * sampled + budget * nbr_in * mem + budget * mem
        }
    };
    // Node-feature projection (W_s) + output transformation (FTM).
    let projection_macs = if nfeat > 0 { nfeat * mem } else { 0 };
    let ftm_macs = (mem + mem) * emb;
    ops.gnn.macs = neighbor_time_macs + attention_macs + projection_macs + ftm_macs;

    // --- update: write back the new memory and the new cached message,
    // append to the neighbor table.
    ops.update.mems = mem + msg + 3;

    ops
}

/// Computation-reduction factor of a configuration relative to a baseline
/// (1.0 = no reduction).  Used to report the "84% computation reduction"
/// headline number.
pub fn mac_reduction(baseline: &StageOps, optimized: &StageOps) -> f64 {
    let base = baseline.total().macs as f64;
    if base == 0.0 {
        return 0.0;
    }
    1.0 - optimized.total().macs as f64 / base
}

/// Memory-access-reduction factor relative to a baseline.
pub fn mem_reduction(baseline: &StageOps, optimized: &StageOps) -> f64 {
    let base = baseline.total().mems as f64;
    if base == 0.0 {
        return 0.0;
    }
    1.0 - optimized.total().mems as f64 / base
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelConfig, OptimizationVariant};

    fn wiki_config(variant: OptimizationVariant) -> ModelConfig {
        ModelConfig::paper_default(0, 172).with_variant(variant)
    }

    #[test]
    fn gnn_dominates_baseline_compute_as_in_table_i() {
        let ops = per_embedding_ops(&wiki_config(OptimizationVariant::Baseline));
        let total = ops.total();
        assert!(total.macs > 0);
        // Table I: the GNN stage dominates the MACs and the memory stage
        // dominates the MEMs.  (The paper reports ~94% of MACs in the GNN
        // stage; our GRU is slightly heavier because the full concatenated
        // message is fed to every gate, so we assert a looser bound.)
        assert!(ops.gnn.macs as f64 > 0.75 * total.macs as f64);
        // Vertex-data traffic (messages/memory in the memory stage plus the
        // neighbor memory/edge-feature fetches in the GNN stage) dominates
        // the external-memory accesses.
        assert!((ops.memory.mems + ops.gnn.mems) as f64 > 0.8 * total.mems as f64);
        assert_eq!(ops.sample.macs, 0);
        assert_eq!(ops.update.macs, 0);
    }

    #[test]
    fn sat_halves_gnn_compute() {
        let base = per_embedding_ops(&wiki_config(OptimizationVariant::Baseline));
        let sat = per_embedding_ops(&wiki_config(OptimizationVariant::Sat));
        let ratio = sat.total().macs as f64 / base.total().macs as f64;
        // Table II: +SAT leaves ~53% of the baseline computation.
        assert!(ratio > 0.35 && ratio < 0.70, "SAT ratio {ratio}");
        // Memory accesses unchanged at this rung (neighbors still all fetched).
        assert_eq!(sat.total().mems, base.total().mems);
    }

    #[test]
    fn pruning_reduces_compute_and_memory_linearly() {
        let full = per_embedding_ops(&wiki_config(OptimizationVariant::SatLut));
        let np_l = per_embedding_ops(&wiki_config(OptimizationVariant::NpLarge));
        let np_m = per_embedding_ops(&wiki_config(OptimizationVariant::NpMedium));
        let np_s = per_embedding_ops(&wiki_config(OptimizationVariant::NpSmall));
        assert!(np_l.total().macs > np_m.total().macs);
        assert!(np_m.total().macs > np_s.total().macs);
        assert!(np_l.total().mems > np_m.total().mems);
        assert!(np_m.total().mems > np_s.total().mems);
        // Near-linear reduction in the GNN-stage memory accesses with the
        // number of kept neighbors (6/4/2 out of 10).
        let per_neighbor_mem = (full.gnn.mems - np_s.gnn.mems) as f64 / 8.0;
        let expected_np_m = full.gnn.mems as f64 - 6.0 * per_neighbor_mem;
        let actual = np_m.gnn.mems as f64;
        assert!((actual - expected_np_m).abs() / expected_np_m < 0.05);
    }

    #[test]
    fn headline_reductions_match_paper_shape() {
        // The paper reports 84% computation reduction and 67% memory-access
        // reduction for the most aggressive model (NP(S)) vs the baseline.
        let base = per_embedding_ops(&wiki_config(OptimizationVariant::Baseline));
        let np_s = per_embedding_ops(&wiki_config(OptimizationVariant::NpSmall));
        let mac_red = mac_reduction(&base, &np_s);
        let mem_red = mem_reduction(&base, &np_s);
        assert!(mac_red > 0.70, "MAC reduction only {mac_red:.2}");
        assert!(mem_red > 0.40, "MEM reduction only {mem_red:.2}");
        assert!(mac_red < 0.98 && mem_red < 0.98);
    }

    #[test]
    fn lut_removes_time_encoder_macs() {
        let sat = per_embedding_ops(&wiki_config(OptimizationVariant::Sat));
        let lut = per_embedding_ops(&wiki_config(OptimizationVariant::SatLut));
        assert!(lut.total().macs < sat.total().macs);
        assert_eq!(lut.total().mems, sat.total().mems);
    }

    #[test]
    fn stage_ops_arithmetic() {
        let mut a = StageOps::default();
        a.stage_mut(Stage::Gnn).macs = 10;
        a.stage_mut(Stage::Sample).mems = 3;
        let b = a;
        let sum = a + b;
        assert_eq!(sum.gnn.macs, 20);
        assert_eq!(sum.stage(Stage::Sample).mems, 6);
        assert_eq!(sum.total().macs, 20);
        let mut c = a;
        c += b;
        assert_eq!(c, sum);
    }
}
