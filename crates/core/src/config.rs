//! Model configuration and the optimization-variant ladder of Table II.

use serde::{Deserialize, Serialize};
use tgnn_tensor::Float;

/// Which attention aggregator the embedding module uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttentionKind {
    /// Transformer-style temporal attention (Eq. 11–15) — the TGN baseline.
    Vanilla,
    /// The paper's simplified temporal attention (Eq. 16).
    Simplified,
}

/// Which time encoder the model uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimeEncoderKind {
    /// `cos(ωΔt + φ)` (Eq. 6).
    Cos,
    /// Equal-frequency look-up table (Section III-C).
    Lut,
}

/// The accumulated-optimization rungs reported row by row in Table II.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum OptimizationVariant {
    /// Vanilla TGN-attn: full attention, cos time encoder, 10 neighbors.
    Baseline,
    /// + simplified attention (SAT).
    Sat,
    /// + LUT time encoder.
    SatLut,
    /// + neighbor pruning with 6 neighbors — NP(L).
    NpLarge,
    /// + neighbor pruning with 4 neighbors — NP(M).
    NpMedium,
    /// + neighbor pruning with 2 neighbors — NP(S).
    NpSmall,
}

impl OptimizationVariant {
    /// All rungs in Table II order.
    pub fn ladder() -> [OptimizationVariant; 6] {
        [
            Self::Baseline,
            Self::Sat,
            Self::SatLut,
            Self::NpLarge,
            Self::NpMedium,
            Self::NpSmall,
        ]
    }

    /// Human-readable label matching the paper's row names.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Baseline => "Baseline",
            Self::Sat => "+SAT",
            Self::SatLut => "+LUT",
            Self::NpLarge => "+NP(L)",
            Self::NpMedium => "+NP(M)",
            Self::NpSmall => "+NP(S)",
        }
    }

    /// The attention aggregator this rung uses.
    pub fn attention(&self) -> AttentionKind {
        match self {
            Self::Baseline => AttentionKind::Vanilla,
            _ => AttentionKind::Simplified,
        }
    }

    /// The time encoder this rung uses.
    pub fn time_encoder(&self) -> TimeEncoderKind {
        match self {
            Self::Baseline | Self::Sat => TimeEncoderKind::Cos,
            _ => TimeEncoderKind::Lut,
        }
    }

    /// The number of temporal neighbors aggregated (the pruning budget).
    pub fn neighbor_budget(&self, sampled_neighbors: usize) -> usize {
        match self {
            Self::Baseline | Self::Sat | Self::SatLut => sampled_neighbors,
            Self::NpLarge => 6.min(sampled_neighbors),
            Self::NpMedium => 4.min(sampled_neighbors),
            Self::NpSmall => 2.min(sampled_neighbors),
        }
    }

    /// True if this rung is a student model trained by knowledge
    /// distillation from the baseline teacher.
    pub fn is_student(&self) -> bool {
        !matches!(self, Self::Baseline)
    }
}

/// Hyper-parameters of a TGN-attn model instance.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Node-memory dimensionality `f_mem` (100 in the paper's setup).
    pub memory_dim: usize,
    /// Time-encoding dimensionality (100 in TGN's reference configuration).
    pub time_dim: usize,
    /// Output embedding dimensionality `f_emb`.
    pub embedding_dim: usize,
    /// Static node feature dimensionality `|v_i|` (dataset dependent).
    pub node_feature_dim: usize,
    /// Edge feature dimensionality `|e_ij|` (dataset dependent).
    pub edge_feature_dim: usize,
    /// Number of most-recent temporal neighbors sampled per vertex
    /// (`|N(v)|`, 10 in the baseline).
    pub sampled_neighbors: usize,
    /// Pruning budget: how many of the sampled neighbors are aggregated.
    pub neighbor_budget: usize,
    /// Attention aggregator.
    pub attention: AttentionKind,
    /// Time encoder.
    pub time_encoder: TimeEncoderKind,
    /// Number of LUT bins (128 in the paper).
    pub lut_bins: usize,
    /// Δt normalisation constant for the simplified attention (seconds).
    pub time_scale: Float,
    /// RNG seed used for weight initialisation.
    pub seed: u64,
}

impl ModelConfig {
    /// The paper's reference configuration for a dataset with the given
    /// feature dimensions (memory 100, time encoding 100, embedding 100,
    /// 10 sampled neighbors).
    pub fn paper_default(node_feature_dim: usize, edge_feature_dim: usize) -> Self {
        Self {
            memory_dim: 100,
            time_dim: 100,
            embedding_dim: 100,
            node_feature_dim,
            edge_feature_dim,
            sampled_neighbors: 10,
            neighbor_budget: 10,
            attention: AttentionKind::Vanilla,
            time_encoder: TimeEncoderKind::Cos,
            lut_bins: 128,
            time_scale: 86_400.0,
            seed: 42,
        }
    }

    /// A small configuration for unit tests (dims of a few, 4 neighbors).
    pub fn tiny(node_feature_dim: usize, edge_feature_dim: usize) -> Self {
        Self {
            memory_dim: 8,
            time_dim: 6,
            embedding_dim: 8,
            node_feature_dim,
            edge_feature_dim,
            sampled_neighbors: 4,
            neighbor_budget: 4,
            attention: AttentionKind::Vanilla,
            time_encoder: TimeEncoderKind::Cos,
            lut_bins: 16,
            time_scale: 3_600.0,
            seed: 7,
        }
    }

    /// Applies an [`OptimizationVariant`] rung to this configuration.
    pub fn with_variant(mut self, variant: OptimizationVariant) -> Self {
        self.attention = variant.attention();
        self.time_encoder = variant.time_encoder();
        self.neighbor_budget = variant.neighbor_budget(self.sampled_neighbors);
        self
    }

    /// Message dimensionality: `s_src || s_dst || f_e || Φ(Δt)` (Eq. 4–5).
    pub fn message_dim(&self) -> usize {
        2 * self.memory_dim + self.edge_feature_dim + self.time_dim
    }

    /// Neighbor-side attention input dimensionality:
    /// `f'_j || e_ij || Φ(Δt)`.
    pub fn neighbor_input_dim(&self) -> usize {
        self.memory_dim + self.edge_feature_dim + self.time_dim
    }

    /// Query-side attention input dimensionality: `f'_i || Φ(0)`.
    pub fn query_input_dim(&self) -> usize {
        self.memory_dim + self.time_dim
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.memory_dim == 0 || self.time_dim == 0 || self.embedding_dim == 0 {
            return Err("dimensions must be positive".into());
        }
        if self.sampled_neighbors == 0 {
            return Err("must sample at least one neighbor".into());
        }
        if self.neighbor_budget == 0 || self.neighbor_budget > self.sampled_neighbors {
            return Err("neighbor budget must be in [1, sampled_neighbors]".into());
        }
        if self.lut_bins < 2 {
            return Err("need at least two LUT bins".into());
        }
        if self.time_scale <= 0.0 {
            return Err("time scale must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_matches_table_ii() {
        let rungs = OptimizationVariant::ladder();
        assert_eq!(rungs.len(), 6);
        assert_eq!(rungs[0].label(), "Baseline");
        assert_eq!(rungs[0].attention(), AttentionKind::Vanilla);
        assert_eq!(rungs[0].time_encoder(), TimeEncoderKind::Cos);
        assert_eq!(rungs[0].neighbor_budget(10), 10);
        assert!(!rungs[0].is_student());

        assert_eq!(rungs[1].attention(), AttentionKind::Simplified);
        assert_eq!(rungs[1].time_encoder(), TimeEncoderKind::Cos);

        assert_eq!(rungs[2].time_encoder(), TimeEncoderKind::Lut);
        assert_eq!(rungs[2].neighbor_budget(10), 10);

        assert_eq!(rungs[3].neighbor_budget(10), 6);
        assert_eq!(rungs[4].neighbor_budget(10), 4);
        assert_eq!(rungs[5].neighbor_budget(10), 2);
        assert!(rungs[5].is_student());
    }

    #[test]
    fn paper_default_dimensions() {
        let cfg = ModelConfig::paper_default(0, 172);
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.message_dim(), 200 + 172 + 100);
        assert_eq!(cfg.neighbor_input_dim(), 100 + 172 + 100);
        assert_eq!(cfg.query_input_dim(), 200);
    }

    #[test]
    fn with_variant_applies_ladder() {
        let cfg = ModelConfig::paper_default(0, 172).with_variant(OptimizationVariant::NpMedium);
        assert_eq!(cfg.attention, AttentionKind::Simplified);
        assert_eq!(cfg.time_encoder, TimeEncoderKind::Lut);
        assert_eq!(cfg.neighbor_budget, 4);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut cfg = ModelConfig::tiny(0, 4);
        cfg.neighbor_budget = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = ModelConfig::tiny(0, 4);
        cfg.neighbor_budget = 100;
        assert!(cfg.validate().is_err());
        let mut cfg = ModelConfig::tiny(0, 4);
        cfg.memory_dim = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = ModelConfig::tiny(0, 4);
        cfg.time_scale = 0.0;
        assert!(cfg.validate().is_err());
        let mut cfg = ModelConfig::tiny(0, 4);
        cfg.lut_bins = 1;
        assert!(cfg.validate().is_err());
    }
}
