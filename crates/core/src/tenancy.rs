//! Multi-tenant vocabulary: tenant identity, overload policies, and the
//! per-result disposition metadata.
//!
//! The serve-millions north star means one pipeline instance is shared by
//! many independent event producers ("tenants": products, customers,
//! per-region feeds).  The admission layer in `tgnn-serve` keys its bounded
//! ingress queues and its weighted-fair scheduler by [`TenantId`]; the types
//! live here in `tgnn-core` because *results* carry them — every served
//! embedding batch is annotated with the tenant each event belongs to and
//! whether it met its deadline ([`ResultMeta`]), and downstream consumers of
//! engine output should not need to depend on the serving crate to interpret
//! that metadata.
//!
//! The contract each [`OverloadPolicy`] provides under sustained overload
//! (offered load exceeding pipeline capacity for long enough that a bounded
//! tenant queue fills):
//!
//! | Policy | Full-queue behaviour | Caller sees | Results |
//! |---|---|---|---|
//! | [`Block`](OverloadPolicy::Block) | `submit` blocks until space | backpressure | every event served |
//! | [`DropNewest`](OverloadPolicy::DropNewest) | incoming event dropped | `Dropped` outcome | admitted events served |
//! | [`DropOldest`](OverloadPolicy::DropOldest) | queue head evicted, incoming admitted | `Admitted` (eviction counted) | freshest events served |
//! | [`Late`](OverloadPolicy::Late) | `submit` blocks until space | backpressure | served, flagged [`Disposition::Late`] past deadline |
//! | [`ServeStale`](OverloadPolicy::ServeStale) | answered from the embedding cache | `ServedStale` outcome | flagged [`Disposition::Stale`] with its age |
//!
//! Dropping happens **only** in the ingress queue: once the scheduler hands
//! an event to the micro-batcher it is sealed into a batch and will be
//! served exactly once (the admission property tests assert this).
//! `ServeStale` completes the block/drop/late spectrum with a *quality*
//! axis: instead of delaying or discarding overload, it answers from the
//! serving layer's bounded-staleness embedding cache and labels the result
//! with how many epochs old it is.

/// Identifies one tenant of a multi-tenant serving instance.
///
/// A `TenantId` is an index into the tenant table the server was configured
/// with (`ServeConfig::tenants` in `tgnn-serve`); it is cheap, `Copy`, and
/// stable for the lifetime of the server.  Single-tenant deployments use
/// [`TenantId::DEFAULT`] implicitly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The implicit tenant of a single-tenant server (index 0).
    pub const DEFAULT: TenantId = TenantId(0);

    /// The tenant-table index this id names.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant#{}", self.0)
    }
}

/// What a tenant's `submit` does once its bounded ingress queue is full.
///
/// See the [module table](self) for the full contract.  `Block` is the
/// single-tenant default and preserves today's backpressure semantics
/// bit-for-bit; the drop modes trade completeness for bounded queueing
/// delay; `Late` admits everything (blocking at the bound like `Block`) but
/// flags results whose admission-to-completion latency exceeded the
/// tenant's deadline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum OverloadPolicy {
    /// Block the submitter until the queue has space (backpressure).
    #[default]
    Block,
    /// Reject the incoming event; everything already queued is served.
    DropNewest,
    /// Evict the oldest queued event to admit the incoming one.
    DropOldest,
    /// Admit (blocking at the bound) and mark results that complete after
    /// the tenant's deadline as [`Disposition::Late`].
    Late,
    /// Answer from the serving layer's bounded-staleness embedding cache
    /// when the queue is full: the event is *not* admitted to the pipeline;
    /// its result carries the last served embeddings of the touched
    /// vertices, flagged [`Disposition::Stale`] with the age in epochs.  A
    /// cache miss (no fresh-enough entry for every touched vertex) degrades
    /// to a `DropNewest`-style shed — the cache never answers beyond its
    /// staleness bound.
    ServeStale,
}

impl OverloadPolicy {
    /// Stable lower-case label, used in reports and the bench JSON.
    pub fn label(self) -> &'static str {
        match self {
            OverloadPolicy::Block => "block",
            OverloadPolicy::DropNewest => "drop-newest",
            OverloadPolicy::DropOldest => "drop-oldest",
            OverloadPolicy::Late => "late",
            OverloadPolicy::ServeStale => "serve-stale",
        }
    }
}

impl std::str::FromStr for OverloadPolicy {
    type Err = String;

    /// Parses the labels `label()` emits (hyphen/underscore-insensitive):
    /// `block`, `drop-newest`, `drop-oldest`, `late`, `serve-stale`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().replace('_', "-").as_str() {
            "block" => Ok(OverloadPolicy::Block),
            "drop-newest" | "dropnewest" => Ok(OverloadPolicy::DropNewest),
            "drop-oldest" | "dropoldest" => Ok(OverloadPolicy::DropOldest),
            "late" => Ok(OverloadPolicy::Late),
            "serve-stale" | "servestale" => Ok(OverloadPolicy::ServeStale),
            other => Err(format!(
                "unknown overload policy {other:?} (expected block|drop-newest|drop-oldest|late|serve-stale)"
            )),
        }
    }
}

/// Whether a served result met its tenant's latency deadline, or — under
/// [`OverloadPolicy::ServeStale`] — was answered from the embedding cache.
///
/// Dispositions are *metadata only*: a `Late` embedding is bitwise-identical
/// to the embedding the same event would have produced on time — the flag
/// records that the pipeline's queueing delay exceeded the deadline, not
/// that the computation differed (asserted by the admission property tests).
/// A `Stale` embedding is bitwise-identical to the embedding *served at the
/// cached epoch*; `age_epochs` says how many epoch barriers have committed
/// since.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Disposition {
    /// Completed within the tenant's deadline (or the tenant has none).
    #[default]
    OnTime,
    /// Completed after the tenant's deadline elapsed.  Graded whenever the
    /// tenant configures a deadline — [`OverloadPolicy::Late`] is the
    /// policy built around it (admit everything, flag the stragglers), but
    /// drop-policy tenants with a deadline get the same observability.
    Late,
    /// Answered from the bounded-staleness embedding cache without entering
    /// the pipeline ([`OverloadPolicy::ServeStale`] under overload).
    Stale {
        /// Epoch barriers committed since the cached embedding was served
        /// (0 = the cache entry is current).  Never exceeds the cache's
        /// configured staleness bound.
        age_epochs: u64,
    },
}

impl Disposition {
    /// True for [`Disposition::Late`].
    pub fn is_late(self) -> bool {
        matches!(self, Disposition::Late)
    }

    /// True for [`Disposition::Stale`] (any age).
    pub fn is_stale(self) -> bool {
        matches!(self, Disposition::Stale { .. })
    }

    /// The stale age in epochs, or `None` for non-stale dispositions.
    pub fn stale_age(self) -> Option<u64> {
        match self {
            Disposition::Stale { age_epochs } => Some(age_epochs),
            _ => None,
        }
    }
}

/// Per-event result annotation: which tenant the event belonged to and
/// whether its result met the deadline.  Served batches carry one
/// `ResultMeta` per event, aligned with the event order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResultMeta {
    /// The tenant whose ingress queue admitted the event.
    pub tenant: TenantId,
    /// Deadline disposition of the result.
    pub disposition: Disposition,
    /// Which compute backend served this result (see
    /// [`BackendKind`](crate::backend::BackendKind)).  Single-backend
    /// servers stamp their one backend; heterogeneously routed servers
    /// stamp the backend the tenant was declared on — the routing
    /// conservation tests in `tgnn-serve` check it for every result.
    /// Stale cache answers carry the declared backend of the tenant they
    /// answer for (the cached values were served earlier, possibly by
    /// another tenant's backend; the cache stores served history, not
    /// provenance).
    pub backend: crate::backend::BackendKind,
    /// Causal-trace identifier: the pipeline epoch whose trace decomposes
    /// this result's admit→deliver latency into additive segments (see the
    /// serving layer's trace slab).  `0` means untraced — results that never
    /// entered the pipeline (stale cache answers, recovery re-serves) carry
    /// no trace.
    pub trace_id: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_id_roundtrip_and_default() {
        assert_eq!(TenantId::DEFAULT.index(), 0);
        assert_eq!(TenantId(3).index(), 3);
        assert_eq!(format!("{}", TenantId(7)), "tenant#7");
    }

    #[test]
    fn overload_policy_labels_roundtrip_through_from_str() {
        for p in [
            OverloadPolicy::Block,
            OverloadPolicy::DropNewest,
            OverloadPolicy::DropOldest,
            OverloadPolicy::Late,
            OverloadPolicy::ServeStale,
        ] {
            assert_eq!(p.label().parse::<OverloadPolicy>().unwrap(), p);
        }
        assert_eq!(
            "DROP_NEWEST".parse::<OverloadPolicy>().unwrap(),
            OverloadPolicy::DropNewest
        );
        assert!("yolo".parse::<OverloadPolicy>().is_err());
    }

    #[test]
    fn disposition_default_is_on_time() {
        assert_eq!(Disposition::default(), Disposition::OnTime);
        assert!(Disposition::Late.is_late());
        assert!(!Disposition::OnTime.is_late());
    }

    #[test]
    fn stale_disposition_carries_its_age() {
        let d = Disposition::Stale { age_epochs: 7 };
        assert!(d.is_stale());
        assert!(!d.is_late());
        assert_eq!(d.stale_age(), Some(7));
        assert_eq!(Disposition::OnTime.stale_age(), None);
        assert_eq!(
            "SERVE_STALE".parse::<OverloadPolicy>().unwrap(),
            OverloadPolicy::ServeStale
        );
    }
}
