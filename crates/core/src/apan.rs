//! APAN-style asynchronous baseline.
//!
//! Fig. 7 of the paper compares the co-design against APAN
//! ("Asynchronous Propagation Attention Network"), the latency-oriented TGNN
//! that moves the expensive neighborhood aggregation off the critical path by
//! *pushing* mail to neighbors asynchronously and computing embeddings from a
//! per-vertex mailbox only.  The crucial consequences the figure relies on
//! are:
//!
//! * inference latency is much lower than TGN's because no temporal-neighbor
//!   features are gathered synchronously, and
//! * accuracy is noticeably lower than TGN's (the paper shows ~0.3–0.5% AP
//!   below TGN on Wikipedia) because the embedding sees only mailbox
//!   summaries rather than attended neighbor states.
//!
//! This module implements that computation pattern faithfully at the
//! data-flow level: mail = concatenation summaries pushed to the `k` most
//! recent neighbors at update time; embeddings = attention over the vertex's
//! own mailbox (no external neighbor fetches on the inference path).

use crate::config::ModelConfig;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use tgnn_graph::{EventBatch, InteractionEvent, NodeId, TemporalGraph};
use tgnn_nn::loss::average_precision;
use tgnn_nn::{GruCell, Linear};
use tgnn_tensor::ops::softmax;
use tgnn_tensor::{Float, Matrix, TensorRng};

/// Configuration of the APAN-style baseline.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ApanConfig {
    /// Vertex state dimensionality.
    pub memory_dim: usize,
    /// Number of mail slots kept per vertex.
    pub mailbox_slots: usize,
    /// How many recent neighbors receive propagated mail per event.
    pub fanout: usize,
    /// Edge feature dimensionality.
    pub edge_feature_dim: usize,
    /// Seed for weight initialisation.
    pub seed: u64,
}

impl ApanConfig {
    /// Mirrors a TGN model configuration so the comparison is like-for-like.
    pub fn from_model_config(cfg: &ModelConfig) -> Self {
        Self {
            memory_dim: cfg.memory_dim,
            mailbox_slots: cfg.sampled_neighbors,
            fanout: cfg.sampled_neighbors,
            edge_feature_dim: cfg.edge_feature_dim,
            seed: cfg.seed,
        }
    }

    fn mail_dim(&self) -> usize {
        self.memory_dim + self.edge_feature_dim
    }
}

/// The APAN-style model and its streaming state.
#[derive(Clone, Debug)]
pub struct ApanModel {
    config: ApanConfig,
    updater: GruCell,
    mail_attention: Linear,
    output: Linear,
    /// Vertex state.
    memory: Matrix,
    /// Per-vertex mailbox of propagated mail vectors.
    mailboxes: Vec<VecDeque<Vec<Float>>>,
    /// Per-vertex recent neighbors (propagation targets).
    recent_neighbors: Vec<VecDeque<NodeId>>,
}

impl ApanModel {
    /// Creates the baseline for a graph with `num_nodes` vertices.
    pub fn new(config: ApanConfig, num_nodes: usize, rng: &mut TensorRng) -> Self {
        let mail_dim = config.mail_dim();
        Self {
            updater: GruCell::new("apan.updater", mail_dim, config.memory_dim, rng),
            mail_attention: Linear::new("apan.attention", mail_dim, 1, rng),
            output: Linear::new(
                "apan.output",
                config.memory_dim + mail_dim,
                config.memory_dim,
                rng,
            ),
            memory: Matrix::zeros(num_nodes, config.memory_dim),
            mailboxes: vec![VecDeque::new(); num_nodes],
            recent_neighbors: vec![VecDeque::new(); num_nodes],
            config,
        }
    }

    /// The embedding dimensionality (same as the memory dimensionality).
    pub fn embedding_dim(&self) -> usize {
        self.config.memory_dim
    }

    /// Computes a vertex embedding from its state and mailbox only — the
    /// latency-critical path contains no neighbor-table or feature-table
    /// reads, which is APAN's design point.
    pub fn embed(&self, v: NodeId) -> Vec<Float> {
        let state = self.memory.row(v as usize);
        let mailbox = &self.mailboxes[v as usize];
        let mail_dim = self.config.mail_dim();
        let summary = if mailbox.is_empty() {
            vec![0.0; mail_dim]
        } else {
            // Attention over mail slots.
            let logits: Vec<Float> = mailbox
                .iter()
                .map(|mail| self.mail_attention.forward(&Matrix::row_vector(mail))[(0, 0)])
                .collect();
            let weights = softmax(&logits);
            let mut acc = vec![0.0; mail_dim];
            for (mail, &w) in mailbox.iter().zip(&weights) {
                for (a, &m) in acc.iter_mut().zip(mail) {
                    *a += w * m;
                }
            }
            acc
        };
        let mut input = Vec::with_capacity(self.config.memory_dim + mail_dim);
        input.extend_from_slice(state);
        input.extend_from_slice(&summary);
        self.output
            .forward(&Matrix::row_vector(&input))
            .row_to_vec(0)
    }

    /// Scores a candidate edge by the dot product of the two embeddings.
    pub fn score(&self, src: NodeId, dst: NodeId) -> Float {
        let a = self.embed(src);
        let b = self.embed(dst);
        tgnn_tensor::gemm::dot(&a, &b)
    }

    /// Ingests one event: updates both endpoints' state from the mail they
    /// have accumulated, then asynchronously propagates new mail to the
    /// recent neighbors of both endpoints.
    pub fn observe(&mut self, event: &InteractionEvent, graph: &TemporalGraph) {
        let edge_feature = graph.edge_feature(event.edge_id).to_vec();
        for (v, other) in [(event.src, event.dst), (event.dst, event.src)] {
            // Mail describing this interaction from v's perspective.
            let mut mail = Vec::with_capacity(self.config.mail_dim());
            mail.extend_from_slice(self.memory.row(other as usize));
            mail.extend_from_slice(&edge_feature);

            // Synchronous part: update v's own state with the new mail.
            let updated = self.updater.forward(
                &Matrix::row_vector(&mail),
                &Matrix::row_vector(self.memory.row(v as usize)),
            );
            self.memory.set_row(v as usize, updated.row(0));
            self.push_mail(v, mail.clone());

            // Asynchronous part: propagate the mail to v's recent neighbors.
            let targets: Vec<NodeId> = self.recent_neighbors[v as usize]
                .iter()
                .rev()
                .take(self.config.fanout)
                .copied()
                .collect();
            for t in targets {
                self.push_mail(t, mail.clone());
            }
            self.push_recent_neighbor(v, other);
        }
    }

    fn push_mail(&mut self, v: NodeId, mail: Vec<Float>) {
        let q = &mut self.mailboxes[v as usize];
        if q.len() == self.config.mailbox_slots {
            q.pop_front();
        }
        q.push_back(mail);
    }

    fn push_recent_neighbor(&mut self, v: NodeId, neighbor: NodeId) {
        let q = &mut self.recent_neighbors[v as usize];
        if q.len() == self.config.mailbox_slots {
            q.pop_front();
        }
        q.push_back(neighbor);
    }

    /// Replays a chronological stream, scoring each observed edge against a
    /// random negative before ingesting it, and returns the link-prediction
    /// average precision.  This mirrors the evaluation used for the TGN
    /// models so Fig. 7's accuracy axis is comparable.
    pub fn evaluate_stream(
        &mut self,
        events: &[InteractionEvent],
        graph: &TemporalGraph,
        rng: &mut TensorRng,
    ) -> Float {
        let num_nodes = graph.num_nodes() as u32;
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        // Negatives are drawn from recently active vertices, matching
        // `evaluate_link_prediction`'s batch-local negatives for the TGN
        // models: sampling cold vertices instead would let any model separate
        // positives by state warmth alone, inflating the baseline's AP.
        let mut recent: VecDeque<NodeId> = VecDeque::new();
        const RECENT_WINDOW: usize = 128;
        for e in events {
            scores.push(self.score(e.src, e.dst));
            labels.push(1.0);
            let mut neg = None;
            if !recent.is_empty() {
                for _ in 0..8 {
                    let candidate = recent[rng.index(recent.len())];
                    if candidate != e.dst {
                        neg = Some(candidate);
                        break;
                    }
                }
            }
            let neg = neg.unwrap_or_else(|| {
                let candidate = rng.index(num_nodes as usize) as u32;
                if candidate == e.dst {
                    (candidate + 1) % num_nodes
                } else {
                    candidate
                }
            });
            scores.push(self.score(e.src, neg));
            labels.push(0.0);
            self.observe(e, graph);
            for v in [e.src, e.dst] {
                if recent.len() == RECENT_WINDOW {
                    recent.pop_front();
                }
                recent.push_back(v);
            }
        }
        average_precision(&scores, &labels)
    }

    /// Processes a batch and returns the embeddings of the touched vertices —
    /// used by the latency measurements of Fig. 7.
    pub fn process_batch(
        &mut self,
        batch: &EventBatch,
        graph: &TemporalGraph,
    ) -> Vec<(NodeId, Vec<Float>)> {
        let touched = batch.touched_vertices();
        for e in batch.events() {
            self.observe(e, graph);
        }
        touched.into_iter().map(|v| (v, self.embed(v))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgnn_data::{generate, tiny};

    fn setup() -> (ApanModel, TemporalGraph, TensorRng) {
        let graph = generate(&tiny(71));
        let cfg = ApanConfig {
            memory_dim: 8,
            mailbox_slots: 5,
            fanout: 3,
            edge_feature_dim: graph.edge_feature_dim(),
            seed: 2,
        };
        let mut rng = TensorRng::new(cfg.seed);
        let model = ApanModel::new(cfg, graph.num_nodes(), &mut rng);
        (model, graph, rng)
    }

    #[test]
    fn mailbox_is_bounded_and_state_evolves() {
        let (mut model, graph, _) = setup();
        for e in &graph.events()[..200] {
            model.observe(e, &graph);
        }
        assert!(model.mailboxes.iter().all(|m| m.len() <= 5));
        let touched_any = graph.events()[..200]
            .iter()
            .flat_map(|e| e.endpoints())
            .any(|v| model.memory.row(v as usize).iter().any(|&x| x.abs() > 1e-6));
        assert!(touched_any, "vertex state never changed");
    }

    #[test]
    fn embedding_dimension_and_finiteness() {
        let (mut model, graph, _) = setup();
        for e in &graph.events()[..50] {
            model.observe(e, &graph);
        }
        let emb = model.embed(graph.events()[0].src);
        assert_eq!(emb.len(), model.embedding_dim());
        assert!(emb.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn evaluation_returns_valid_ap() {
        let (mut model, graph, mut rng) = setup();
        let ap = model.evaluate_stream(&graph.events()[..300], &graph, &mut rng);
        assert!((0.0..=1.0).contains(&ap));
    }

    #[test]
    fn batch_processing_covers_touched_vertices() {
        let (mut model, graph, _) = setup();
        let batch = EventBatch::new(graph.events()[..20].to_vec());
        let out = model.process_batch(&batch, &graph);
        assert_eq!(out.len(), batch.touched_vertices().len());
    }

    #[test]
    fn config_mirrors_model_config() {
        let cfg = ApanConfig::from_model_config(&ModelConfig::tiny(0, 4));
        assert_eq!(cfg.memory_dim, 8);
        assert_eq!(cfg.mailbox_slots, 4);
        assert_eq!(cfg.edge_feature_dim, 4);
    }
}
