//! Temporal link prediction — the downstream task used for self-supervised
//! training and for the Average Precision numbers of Table II / Fig. 7.

use crate::inference::InferenceEngine;
use serde::{Deserialize, Serialize};
use tgnn_graph::{EventBatch, InteractionEvent, NodeId, TemporalGraph};
use tgnn_nn::loss::average_precision;
use tgnn_nn::{Linear, Param};
use tgnn_tensor::{Float, Matrix, TensorRng};

/// A two-layer MLP edge decoder: `score = w₂ · relu(W₁ [h_u || h_v] + b₁) + b₂`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LinkDecoder {
    hidden: Linear,
    output: Linear,
    embedding_dim: usize,
}

/// Backward cache of one decoder evaluation.
#[derive(Clone, Debug)]
pub struct DecoderCache {
    concat: Matrix,
    hidden_pre: Matrix,
    hidden_act: Matrix,
}

impl LinkDecoder {
    /// Creates a decoder for embeddings of the given dimensionality.
    pub fn new(embedding_dim: usize, hidden_dim: usize, rng: &mut TensorRng) -> Self {
        Self {
            hidden: Linear::new("decoder.hidden", 2 * embedding_dim, hidden_dim, rng),
            output: Linear::new("decoder.output", hidden_dim, 1, rng),
            embedding_dim,
        }
    }

    /// Scores a candidate edge between two embeddings (higher = more likely).
    pub fn score(&self, src: &[Float], dst: &[Float]) -> Float {
        self.score_cached(src, dst).0
    }

    /// Score plus the cache needed for [`Self::backward`].
    pub fn score_cached(&self, src: &[Float], dst: &[Float]) -> (Float, DecoderCache) {
        assert_eq!(src.len(), self.embedding_dim, "decoder: src dim mismatch");
        assert_eq!(dst.len(), self.embedding_dim, "decoder: dst dim mismatch");
        let mut concat = Vec::with_capacity(2 * self.embedding_dim);
        concat.extend_from_slice(src);
        concat.extend_from_slice(dst);
        let concat = Matrix::row_vector(&concat);
        let hidden_pre = self.hidden.forward(&concat);
        let hidden_act = hidden_pre.map(|x| x.max(0.0));
        let score = self.output.forward(&hidden_act)[(0, 0)];
        (
            score,
            DecoderCache {
                concat,
                hidden_pre,
                hidden_act,
            },
        )
    }

    /// Backward pass: accumulates decoder gradients and returns the gradient
    /// with respect to `(src, dst)` embeddings.
    pub fn backward(
        &mut self,
        cache: &DecoderCache,
        grad_score: Float,
    ) -> (Vec<Float>, Vec<Float>) {
        let grad_out = Matrix::from_vec(1, 1, vec![grad_score]);
        let grad_hidden_act = self.output.backward(&cache.hidden_act, &grad_out);
        let grad_hidden_pre =
            grad_hidden_act.zip(&cache.hidden_pre, |g, pre| if pre > 0.0 { g } else { 0.0 });
        let grad_concat = self.hidden.backward(&cache.concat, &grad_hidden_pre);
        let row = grad_concat.row(0);
        (
            row[..self.embedding_dim].to_vec(),
            row[self.embedding_dim..].to_vec(),
        )
    }

    /// Learnable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = self.hidden.params_mut();
        out.extend(self.output.params_mut());
        out
    }

    /// Immutable parameter access.
    pub fn params(&self) -> Vec<&Param> {
        let mut out = self.hidden.params();
        out.extend(self.output.params());
        out
    }
}

/// Result of evaluating a model on a test stream.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EvaluationResult {
    /// Average precision over positive (observed) vs negative (sampled)
    /// temporal edges.
    pub average_precision: Float,
    /// Number of positive samples scored.
    pub num_positives: usize,
}

/// Evaluates temporal link prediction over an event stream: for every batch,
/// embeddings are computed for the touched vertices, every observed edge is
/// scored as a positive, and one random destination per edge is scored as a
/// negative.  The vertex state advances chronologically exactly as in
/// deployment.
pub fn evaluate_link_prediction(
    engine: &mut InferenceEngine,
    decoder: &LinkDecoder,
    events: &[InteractionEvent],
    graph: &TemporalGraph,
    batch_size: usize,
    rng: &mut TensorRng,
) -> EvaluationResult {
    let mut scores = Vec::new();
    let mut labels = Vec::new();
    let num_nodes = graph.num_nodes() as u32;

    for chunk in events.chunks(batch_size) {
        let batch = EventBatch::new(chunk.to_vec());
        let out = engine.process_batch(&batch, graph);
        for e in chunk {
            let (Some(h_src), Some(h_dst)) = (out.embedding_of(e.src), out.embedding_of(e.dst))
            else {
                continue;
            };
            scores.push(decoder.score(h_src, h_dst));
            labels.push(1.0);

            // Negative: same source, random destination with an embedding
            // available this batch if possible, otherwise its current memory
            // is unavailable so we score against a random touched vertex.
            let negative = sample_negative(&out.embeddings, e.dst, num_nodes, rng);
            if let Some(h_neg) = negative {
                scores.push(decoder.score(h_src, &h_neg));
                labels.push(0.0);
            }
        }
    }

    EvaluationResult {
        average_precision: average_precision(&scores, &labels),
        num_positives: labels.iter().filter(|&&l| l > 0.5).count(),
    }
}

/// Picks a negative-destination embedding from the batch outputs that is not
/// the true destination.
fn sample_negative(
    embeddings: &[(NodeId, Vec<Float>)],
    true_dst: NodeId,
    _num_nodes: u32,
    rng: &mut TensorRng,
) -> Option<Vec<Float>> {
    if embeddings.len() < 2 {
        return None;
    }
    for _ in 0..8 {
        let candidate = &embeddings[rng.index(embeddings.len())];
        if candidate.0 != true_dst {
            return Some(candidate.1.clone());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::model::TgnModel;
    use tgnn_data::{generate, tiny};
    use tgnn_tensor::approx_eq;

    #[test]
    fn decoder_is_deterministic_and_order_sensitive() {
        let mut rng = TensorRng::new(1);
        let dec = LinkDecoder::new(6, 8, &mut rng);
        let a = rng.uniform_vec(6, -1.0, 1.0);
        let b = rng.uniform_vec(6, -1.0, 1.0);
        assert_eq!(dec.score(&a, &b), dec.score(&a, &b));
        // Src/dst order matters for an MLP decoder (unlike a dot product).
        assert_ne!(dec.score(&a, &b), dec.score(&b, &a));
    }

    #[test]
    fn decoder_backward_matches_finite_differences() {
        let mut rng = TensorRng::new(2);
        let mut dec = LinkDecoder::new(4, 6, &mut rng);
        let a = rng.uniform_vec(4, -1.0, 1.0);
        let b = rng.uniform_vec(4, -1.0, 1.0);
        let (score, cache) = dec.score_cached(&a, &b);
        let (grad_a, grad_b) = dec.backward(&cache, 1.0);
        let eps = 1e-2;
        for i in 0..4 {
            let mut ap = a.clone();
            ap[i] += eps;
            let mut am = a.clone();
            am[i] -= eps;
            let numeric = (dec.score(&ap, &b) - dec.score(&am, &b)) / (2.0 * eps);
            assert!(
                approx_eq(grad_a[i], numeric, 5e-2),
                "src grad {i}: {} vs {numeric}",
                grad_a[i]
            );

            let mut bp = b.clone();
            bp[i] += eps;
            let mut bm = b.clone();
            bm[i] -= eps;
            let numeric_b = (dec.score(&a, &bp) - dec.score(&a, &bm)) / (2.0 * eps);
            assert!(approx_eq(grad_b[i], numeric_b, 5e-2));
        }
        let _ = score;
        assert!(dec.params().len() == 4);
    }

    #[test]
    fn evaluation_produces_ap_in_unit_interval() {
        let graph = generate(&tiny(21));
        let cfg = ModelConfig::tiny(graph.node_feature_dim(), graph.edge_feature_dim());
        let mut rng = TensorRng::new(5);
        let model = TgnModel::new(cfg.clone(), &mut rng);
        let decoder = LinkDecoder::new(cfg.embedding_dim, 8, &mut rng);
        let mut engine = InferenceEngine::new(model, graph.num_nodes());
        engine.warm_up(graph.train_events(), &graph);
        let result = evaluate_link_prediction(
            &mut engine,
            &decoder,
            graph.test_events(),
            &graph,
            32,
            &mut rng,
        );
        assert!(result.num_positives > 0);
        assert!((0.0..=1.0).contains(&result.average_precision));
    }
}
