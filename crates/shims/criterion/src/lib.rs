//! Minimal offline stand-in for `criterion`.
//!
//! Implements the slice of the criterion API the workspace's benches use
//! (`benchmark_group`, `bench_function`, `bench_with_input`, `iter`,
//! `iter_batched`, `criterion_group!`/`criterion_main!`) as a simple
//! wall-clock harness: per benchmark it warms up for a fixed budget, then
//! runs timed iterations and reports min / mean / p50 to stdout in a
//! grep-friendly one-line format:
//!
//! ```text
//! bench group/name ... mean 12.345 us  (min 11.902 us, 57 iters)
//! ```
//!
//! Timings are wall-clock only — good enough to compare kernels on the same
//! machine in the same run, which is exactly how the repo's perf acceptance
//! checks use it.  Environment knobs: `BENCH_WARMUP_MS` (default 200) and
//! `BENCH_MEASURE_MS` (default 700) bound each benchmark's runtime.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn env_ms(var: &str, default_ms: u64) -> Duration {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_millis(default_ms))
}

/// How batched setup inputs are sized; accepted and ignored (every batch is
/// one routine call in this shim, as with criterion's `PerIteration`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("kernel", 128)` → `kernel/128`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// `BenchmarkId::from_parameter(128)` → `128`.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Passed to the benchmark closure; collects timed iterations.
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(warmup: Duration, measure: Duration) -> Self {
        Self {
            warmup,
            measure,
            samples: Vec::new(),
        }
    }

    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_until = Instant::now() + self.warmup;
        while Instant::now() < warm_until {
            black_box(routine());
        }
        let measure_until = Instant::now() + self.measure;
        loop {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if Instant::now() >= measure_until {
                break;
            }
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let warm_until = Instant::now() + self.warmup;
        while Instant::now() < warm_until {
            let input = setup();
            black_box(routine(input));
        }
        let measure_until = Instant::now() + self.measure;
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
            if Instant::now() >= measure_until {
                break;
            }
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

fn report(full_name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("bench {full_name} ... no samples");
        return;
    }
    let min = samples.iter().min().unwrap();
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    println!(
        "bench {full_name} ... mean {}  (min {}, {} iters)",
        format_duration(mean),
        format_duration(*min),
        samples.len()
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    /// Criterion API compatibility; the shim sizes runs by time, not count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Criterion API compatibility; ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.criterion.warmup, self.criterion.measure);
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id.id), &bencher.samples);
        self
    }

    /// Runs one parameterised benchmark.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.criterion.warmup, self.criterion.measure);
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id.id), &bencher.samples);
        self
    }

    /// Ends the group (printing is immediate in this shim).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warmup: env_ms("BENCH_WARMUP_MS", 200),
            measure: env_ms("BENCH_MEASURE_MS", 700),
        }
    }
}

impl Criterion {
    /// Criterion API compatibility (`configure_from_args` in real criterion
    /// parses CLI flags; the shim takes everything from the environment).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.warmup, self.measure);
        f(&mut bencher);
        report(name, &bencher.samples);
        self
    }
}

/// Declares the benchmark entry list, as real criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running every declared group (ignores harness CLI args
/// such as `--bench` that cargo passes).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("serial", 128).id, "serial/128");
        assert_eq!(BenchmarkId::from_parameter("Baseline").id, "Baseline");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher::new(Duration::from_millis(1), Duration::from_millis(5));
        let mut counter = 0u64;
        b.iter(|| {
            counter += 1;
            counter
        });
        assert!(!b.samples.is_empty());
        let mut b2 = Bencher::new(Duration::from_millis(1), Duration::from_millis(5));
        b2.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::LargeInput);
        assert!(!b2.samples.is_empty());
    }

    #[test]
    fn durations_format_with_sensible_units() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert!(format_duration(Duration::from_micros(1500)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with("s"));
    }
}
