//! Minimal offline stand-in for the `serde` facade.
//!
//! The workspace's types carry `#[derive(Serialize, Deserialize)]` so they
//! are ready for real serde once the build environment has registry access,
//! but nothing currently serializes through the trait machinery.  This shim
//! provides the two trait names plus no-op derives (from the sibling
//! `serde_derive` shim) so the annotations compile unchanged.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
