//! No-op derive macros standing in for `serde_derive`.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal shim: `#[derive(Serialize, Deserialize)]` must parse but nothing
//! in the repository serializes through serde (reports are written as
//! hand-formatted JSON/markdown).  The derives therefore expand to nothing;
//! the marker traits live in the sibling `serde` shim crate.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
