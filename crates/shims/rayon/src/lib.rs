//! Minimal offline stand-in for `rayon`, implementing the subset of the
//! parallel-iterator API this workspace uses on a **persistent worker pool**
//! (like real rayon's global pool — no per-call thread spawning).
//!
//! Work is split into **contiguous** per-thread ranges (not work-stolen
//! tasks): every operation here is a flat data-parallel sweep over a slice or
//! vector with roughly uniform cost per item, which contiguous splitting
//! handles well while keeping results in deterministic order.  `map`/
//! `collect` preserves input order exactly, so a parallel run is
//! bit-identical to a serial one for independent items.
//!
//! Thread count comes from `RAYON_NUM_THREADS` (like real rayon) or
//! `std::thread::available_parallelism`.  The pool spawns lazily on the
//! first parallel call and keeps `threads - 1` parked workers alive for the
//! process lifetime; the calling thread participates in every scope, so
//! small batches don't pay a wake-up round-trip for work the caller could do
//! itself.

use std::sync::OnceLock;

mod pool;

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelIterator, ParallelSliceMut,
    };
}

/// Number of worker threads used by all parallel operations.
pub fn current_num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Splits `n` items into at most `threads` contiguous ranges of near-equal
/// length (first `n % threads` ranges get one extra item).
fn split_ranges(n: usize, threads: usize) -> Vec<std::ops::Range<usize>> {
    let threads = threads.max(1).min(n.max(1));
    let base = n / threads;
    let extra = n % threads;
    let mut out = Vec::with_capacity(threads);
    let mut start = 0;
    for t in 0..threads {
        let len = base + usize::from(t < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Runs `f` over every item of `items`, consuming them, across the
/// persistent pool workers.  Falls back to a serial loop for tiny inputs or
/// one thread.
pub fn for_each_parallel<I, F>(items: Vec<I>, f: F)
where
    I: Send,
    F: Fn(I) + Sync,
{
    let threads = current_num_threads();
    if threads <= 1 || items.len() <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let mut groups: Vec<Vec<I>> = Vec::new();
    {
        let mut items = items;
        let ranges = split_ranges(items.len(), threads);
        // Split from the back so indices stay valid.
        for range in ranges.iter().rev() {
            let tail = items.split_off(range.start);
            groups.push(tail);
        }
        groups.reverse();
    }
    let f = &f;
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = groups
        .into_iter()
        .map(|group| {
            Box::new(move || {
                for item in group {
                    f(item);
                }
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    pool::global().run_scoped(tasks);
}

/// Maps `f` over `items`, preserving order, across the persistent pool
/// workers.
pub fn map_parallel<'a, T, R, F>(items: &'a [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let threads = current_num_threads();
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let ranges = split_ranges(items.len(), threads);
    let mut parts: Vec<Option<Vec<R>>> = ranges.iter().map(|_| None).collect();
    {
        let f = &f;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = ranges
            .into_iter()
            .zip(parts.iter_mut())
            .map(|(range, slot)| {
                Box::new(move || {
                    *slot = Some(items[range].iter().map(f).collect::<Vec<R>>());
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool::global().run_scoped(tasks);
    }
    let mut out = Vec::with_capacity(items.len());
    for part in parts {
        out.extend(part.expect("rayon shim: range task did not run"));
    }
    out
}

// ---------------------------------------------------------------------------
// Parallel-iterator facade
// ---------------------------------------------------------------------------

/// Owned-value parallel iterator (`vec.into_par_iter()`).
pub struct IntoParIter<I> {
    items: Vec<I>,
}

/// Borrowing parallel iterator (`slice.par_iter()`).
pub struct ParIter<'a, T> {
    items: &'a [T],
}

/// Result of [`ParIter::map`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

/// `into_par_iter()` entry point.
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter;
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: Send> IntoParallelIterator for Vec<I> {
    type Item = I;
    type Iter = IntoParIter<I>;
    fn into_par_iter(self) -> IntoParIter<I> {
        IntoParIter { items: self }
    }
}

/// `par_iter()` entry point.
pub trait IntoParallelRefIterator<'a> {
    type Item: Sync + 'a;
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// The operations the workspace uses on parallel iterators.
pub trait ParallelIterator: Sized {
    type Item;
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync;
}

impl<I: Send> ParallelIterator for IntoParIter<I> {
    type Item = I;
    fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Sync,
    {
        for_each_parallel(self.items, f);
    }
}

impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;
    fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        let threads = current_num_threads();
        if threads <= 1 || self.items.len() <= 1 {
            for item in self.items {
                f(item);
            }
            return;
        }
        let ranges = split_ranges(self.items.len(), threads);
        let items = self.items;
        let f = &f;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = ranges
            .into_iter()
            .map(|range| {
                Box::new(move || {
                    for item in &items[range] {
                        f(item);
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool::global().run_scoped(tasks);
    }
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Order-preserving parallel map.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Executes the map and collects in input order.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
        C: FromIterator<R>,
    {
        map_parallel(self.items, &self.f).into_iter().collect()
    }
}

// ---------------------------------------------------------------------------
// par_chunks_mut
// ---------------------------------------------------------------------------

/// Parallel mutable chunk iterator (from [`ParallelSliceMut::par_chunks_mut`]).
pub struct ParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

/// Enumerated variant of [`ParChunksMut`].
pub struct ParChunksMutEnumerate<'a, T> {
    chunks: Vec<(usize, &'a mut [T])>,
}

/// `par_chunks_mut()` entry point.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(
            chunk_size > 0,
            "par_chunks_mut: chunk size must be positive"
        );
        ParChunksMut {
            chunks: self.chunks_mut(chunk_size).collect(),
        }
    }
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs every chunk with its index, as `rayon`'s
    /// `IndexedParallelIterator::enumerate` does.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate {
            chunks: self.chunks.into_iter().enumerate().collect(),
        }
    }

    /// Runs `f` over every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a mut [T]) + Sync,
    {
        for_each_parallel(self.chunks, f);
    }
}

impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
    /// Runs `f` over every `(index, chunk)` pair in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &'a mut [T])) + Sync,
    {
        for_each_parallel(self.chunks, f);
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn split_ranges_cover_everything_contiguously() {
        for n in [0usize, 1, 5, 16, 17, 1000] {
            for threads in [1usize, 2, 7, 64] {
                let ranges = split_ranges(n, threads);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                assert_eq!(next, n);
            }
        }
    }

    #[test]
    fn par_chunks_mut_touches_every_element_once() {
        let mut data = vec![0u64; 1003];
        data.par_chunks_mut(17).enumerate().for_each(|(i, chunk)| {
            let bump = (i + 1) / (i + 1); // always 1, but depends on the index
            for x in chunk.iter_mut() {
                *x += bump as u64;
            }
        });
        assert!(data.iter().all(|&x| x == 1));
    }

    #[test]
    fn map_collect_preserves_order() {
        let items: Vec<usize> = (0..500).collect();
        let doubled: Vec<usize> = items.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..500).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_for_each_consumes_all() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let sum = AtomicUsize::new(0);
        (0..100usize)
            .collect::<Vec<_>>()
            .into_par_iter()
            .for_each(|x| {
                sum.fetch_add(x, Ordering::Relaxed);
            });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }
}
