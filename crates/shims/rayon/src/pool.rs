//! The persistent worker pool behind the parallel operations.
//!
//! Workers are spawned once (lazily) and park on a condvar between scopes —
//! the per-call cost of a parallel region is an enqueue + wake, not a thread
//! spawn.  [`Pool::run_scoped`] executes a set of borrowing closures and
//! **blocks until every one of them has finished**, which is what makes the
//! lifetime erasure below sound: no task can outlive the borrows it
//! captures, because `run_scoped` doesn't return while any task is live.
//!
//! The calling thread participates: after enqueueing, it pops and runs tasks
//! from the shared injector itself until the queue is empty, then waits for
//! stragglers.  This also makes nested scopes deadlock-free — a caller can
//! always execute its own tasks even if every pool worker is busy.
//!
//! Panics inside a task are caught, the scope still waits for the remaining
//! tasks, and the panic flag is re-raised on the calling thread (mirroring
//! the old `scope.spawn`/`join` behaviour).

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

type Task = Box<dyn FnOnce() + Send + 'static>;

#[derive(Default)]
struct Injector {
    queue: Mutex<VecDeque<Task>>,
    work_available: Condvar,
}

/// Book-keeping of one `run_scoped` call.
struct ScopeSync {
    remaining: Mutex<usize>,
    all_done: Condvar,
    panicked: AtomicBool,
}

/// A persistent pool of parked worker threads sharing one task injector.
pub(crate) struct Pool {
    injector: Arc<Injector>,
    /// Lifetime spawn counter, asserted constant by the persistence tests.
    #[allow(dead_code)]
    started: AtomicUsize,
}

impl Pool {
    /// Creates a pool and spawns `workers` detached worker threads.
    pub(crate) fn with_workers(workers: usize) -> Self {
        let injector = Arc::new(Injector::default());
        let pool = Self {
            injector: injector.clone(),
            started: AtomicUsize::new(0),
        };
        for i in 0..workers {
            let injector = injector.clone();
            std::thread::Builder::new()
                .name(format!("rayon-shim-{i}"))
                .spawn(move || worker_loop(injector))
                .expect("rayon shim: failed to spawn pool worker");
            pool.started.fetch_add(1, Ordering::Relaxed);
        }
        pool
    }

    /// Total worker threads ever spawned — constant after construction,
    /// which is exactly what the persistence tests assert.
    #[cfg(test)]
    pub(crate) fn threads_spawned(&self) -> usize {
        self.started.load(Ordering::Relaxed)
    }

    /// Runs all `tasks` to completion across the pool workers and the
    /// calling thread, then returns.  Re-raises a panic if any task
    /// panicked.
    pub(crate) fn run_scoped<'scope>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        if tasks.is_empty() {
            return;
        }
        let sync = Arc::new(ScopeSync {
            remaining: Mutex::new(tasks.len()),
            all_done: Condvar::new(),
            panicked: AtomicBool::new(false),
        });
        {
            let mut queue = self.injector.queue.lock().unwrap();
            for task in tasks {
                // SAFETY: `run_scoped` blocks below until `remaining == 0`,
                // i.e. until every wrapped task has run to completion (the
                // count is decremented even when a task panics, via
                // `catch_unwind`).  No task can therefore outlive `'scope`,
                // so erasing the lifetime to `'static` for storage in the
                // shared queue is sound.
                let task: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(task) };
                let sync = sync.clone();
                queue.push_back(Box::new(move || {
                    if std::panic::catch_unwind(AssertUnwindSafe(task)).is_err() {
                        sync.panicked.store(true, Ordering::Release);
                    }
                    let mut remaining = sync.remaining.lock().unwrap();
                    *remaining -= 1;
                    if *remaining == 0 {
                        sync.all_done.notify_all();
                    }
                }));
            }
        }
        self.injector.work_available.notify_all();

        // Participate: drain the injector on this thread too.  We may run
        // tasks of an unrelated concurrent scope — that's fine, it's all
        // finite work, and it guarantees progress even with zero workers.
        loop {
            let task = self.injector.queue.lock().unwrap().pop_front();
            match task {
                Some(task) => task(),
                None => break,
            }
        }
        let mut remaining = sync.remaining.lock().unwrap();
        while *remaining > 0 {
            remaining = sync.all_done.wait(remaining).unwrap();
        }
        drop(remaining);
        if sync.panicked.load(Ordering::Acquire) {
            panic!("rayon shim worker panicked");
        }
    }
}

fn worker_loop(injector: Arc<Injector>) {
    loop {
        let task = {
            let mut queue = injector.queue.lock().unwrap();
            loop {
                if let Some(task) = queue.pop_front() {
                    break task;
                }
                queue = injector.work_available.wait(queue).unwrap();
            }
        };
        task();
    }
}

/// The process-wide pool: `current_num_threads() - 1` workers (the caller is
/// the remaining thread), spawned on first use.
pub(crate) fn global() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool::with_workers(crate::current_num_threads().saturating_sub(1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scoped_tasks_see_borrowed_data_and_all_run() {
        let pool = Pool::with_workers(3);
        let data: Vec<u64> = (0..100).collect();
        let sum = AtomicU64::new(0);
        for _ in 0..50 {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = data
                .chunks(7)
                .map(|chunk| {
                    let sum = &sum;
                    Box::new(move || {
                        sum.fetch_add(chunk.iter().sum::<u64>(), Ordering::Relaxed);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_scoped(tasks);
        }
        assert_eq!(sum.load(Ordering::Relaxed), 50 * 4950);
        // Persistence: the 50 scopes reused the same 3 workers.
        assert_eq!(pool.threads_spawned(), 3);
    }

    #[test]
    fn zero_worker_pool_still_makes_progress_via_caller() {
        let pool = Pool::with_workers(0);
        let hits = AtomicU64::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..16)
            .map(|_| {
                let hits = &hits;
                Box::new(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_scoped(tasks);
        assert_eq!(hits.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn panicking_task_propagates_after_scope_completes() {
        let pool = Pool::with_workers(2);
        let survivors = Arc::new(AtomicU64::new(0));
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..8)
                .map(|i| {
                    let survivors = survivors.clone();
                    Box::new(move || {
                        if i == 3 {
                            panic!("boom");
                        }
                        survivors.fetch_add(1, Ordering::Relaxed);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_scoped(tasks);
        }));
        assert!(result.is_err(), "panic must propagate to the caller");
        // Every non-panicking task still ran before the re-raise.
        assert_eq!(survivors.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let pool = Arc::new(Pool::with_workers(1));
        let total = Arc::new(AtomicU64::new(0));
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
            .map(|_| {
                let pool = pool.clone();
                let total = total.clone();
                Box::new(move || {
                    let inner: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
                        .map(|_| {
                            let total = total.clone();
                            Box::new(move || {
                                total.fetch_add(1, Ordering::Relaxed);
                            }) as Box<dyn FnOnce() + Send + '_>
                        })
                        .collect();
                    pool.run_scoped(inner);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_scoped(tasks);
        assert_eq!(total.load(Ordering::Relaxed), 16);
    }
}
