//! Criterion benchmark of the accelerator-simulator hot paths: the Updater
//! cache and a single simulated processing batch on each design point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tgnn_bench::{build_model, harness_model_config, Dataset};
use tgnn_core::OptimizationVariant;
use tgnn_graph::EventBatch;
use tgnn_hwsim::design::DesignConfig;
use tgnn_hwsim::device::FpgaDevice;
use tgnn_hwsim::{AcceleratorSim, Updater};

fn bench_updater(c: &mut Criterion) {
    let mut group = c.benchmark_group("updater_cache");
    for &elimination in &[true, false] {
        group.bench_with_input(
            BenchmarkId::new("receive_drain_256", elimination),
            &elimination,
            |b, &elim| {
                b.iter(|| {
                    let mut upd = Updater::new(16, 2, 3, elim);
                    for i in 0..256u32 {
                        upd.receive((i % 2) as usize, i % 40, i as f64, 572);
                        if i % 3 == 0 {
                            upd.commit_cycle();
                        }
                    }
                    black_box(upd.drain())
                })
            },
        );
    }
    group.finish();
}

fn bench_simulated_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("accelerator_batch");
    group.sample_size(10);
    let graph = Dataset::Wikipedia.graph(0.01, 3);
    let batch = EventBatch::new(graph.events()[..200].to_vec());

    for (label, design, device) in [
        ("u200", DesignConfig::u200(), FpgaDevice::alveo_u200()),
        ("zcu104", DesignConfig::zcu104(), FpgaDevice::zcu104()),
    ] {
        group.bench_function(BenchmarkId::new("np_medium_200_edges", label), |b| {
            b.iter_batched(
                || {
                    let cfg = harness_model_config(&graph, OptimizationVariant::NpMedium);
                    let model = build_model(&graph, &cfg, 5);
                    AcceleratorSim::new(model, graph.num_nodes(), device.clone(), design.clone())
                },
                |mut sim| black_box(sim.process_batch(&batch, &graph)),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_updater, bench_simulated_batch);
criterion_main!(benches);
