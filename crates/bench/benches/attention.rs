//! Criterion benchmark of the attention aggregators: vanilla (Eq. 11–15) vs
//! the simplified attention (Eq. 16), with and without temporal-neighbor
//! pruning — the source of the Table II computation reductions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tgnn_nn::{SimplifiedAttention, VanillaAttention};
use tgnn_tensor::{Float, TensorRng};

fn bench_attention(c: &mut Criterion) {
    let mut group = c.benchmark_group("attention_aggregator");
    let mut rng = TensorRng::new(7);

    // Paper dimensions: 100-dim memory, 172-dim edge features, 100-dim time
    // encoding, 10 candidate temporal neighbors.
    let neighbor_in = 100 + 172 + 100;
    let vanilla = VanillaAttention::new("v", 200, neighbor_in, 100, 100, &mut rng);
    let sat = SimplifiedAttention::new("s", 10, neighbor_in, 100, 86_400.0, &mut rng);

    let query = rng.uniform_matrix(1, 200, -1.0, 1.0);
    let neighbors = rng.uniform_matrix(10, neighbor_in, -1.0, 1.0);
    let dts: Vec<Float> = (0..10).map(|i| (i as Float + 1.0) * 3_600.0).collect();

    group.bench_function("vanilla_10_neighbors", |b| {
        b.iter(|| black_box(vanilla.forward(&query, &neighbors)))
    });
    for &budget in &[10usize, 6, 4, 2] {
        group.bench_with_input(
            BenchmarkId::new("simplified_topk", budget),
            &budget,
            |b, &k| b.iter(|| black_box(sat.forward(&dts, &neighbors, k))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_attention);
criterion_main!(benches);
