//! Criterion micro-benchmarks of the dense kernels the model is built from:
//! GEMM (blocked, packed, rayon-parallel), the GRU memory updater, and the
//! two time encoders (cos vs LUT — the Section III-C optimization).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tgnn_nn::{CosTimeEncoder, GruCell, LutTimeEncoder};
use tgnn_tensor::gemm::{matmul, matmul_packed_into, par_matmul};
use tgnn_tensor::{Float, Matrix, TensorRng, Workspace};

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    let mut rng = TensorRng::new(1);
    for &n in &[32usize, 64, 128, 256] {
        let a = rng.uniform_matrix(n, n, -1.0, 1.0);
        let b = rng.uniform_matrix(n, n, -1.0, 1.0);
        group.bench_with_input(BenchmarkId::new("serial", n), &n, |bench, _| {
            bench.iter(|| black_box(matmul(&a, &b)))
        });
        group.bench_with_input(BenchmarkId::new("packed", n), &n, |bench, _| {
            let mut ws = Workspace::new();
            let mut c_out = Matrix::zeros(n, n);
            bench.iter(|| {
                matmul_packed_into(&a, &b, &mut c_out, &mut ws);
                black_box(c_out.as_slice()[0])
            })
        });
        group.bench_with_input(BenchmarkId::new("rayon", n), &n, |bench, _| {
            bench.iter(|| black_box(par_matmul(&a, &b)))
        });
        group.bench_with_input(BenchmarkId::new("int8", n), &n, |bench, _| {
            // Weights pre-quantized + pre-packed (the QuantizedLinear setup
            // cost); per-iteration work = activation quantization + i8 GEMM
            // + fused dequant, i.e. what the engine pays per batch.
            use tgnn_tensor::gemm_i8::{
                matmul_i8_dequant_into, pack_rhs_i8, packed_rhs_len, padded_k, quantize_slice_into,
            };
            let bt = b.transpose();
            let mut bt_q = vec![0i8; n * n];
            for i in 0..n {
                quantize_slice_into(bt.row(i), 1.0 / 127.0, &mut bt_q[i * n..(i + 1) * n]);
            }
            let mut packed = vec![0i8; packed_rhs_len(n, n)];
            pack_rhs_i8(&bt_q, n, n, &mut packed);
            let scales = vec![1.0f32; n];
            let kp = padded_k(n);
            let mut a_q = vec![0i8; n * kp];
            let mut c_out = Matrix::zeros(n, n);
            bench.iter(|| {
                for i in 0..n {
                    quantize_slice_into(a.row(i), 1.0 / 127.0, &mut a_q[i * kp..(i + 1) * kp]);
                }
                matmul_i8_dequant_into(&a_q, n, n, &packed, n, &scales, None, &mut c_out);
                black_box(c_out.as_slice()[0])
            })
        });
    }
    group.finish();
}

fn bench_gru(c: &mut Criterion) {
    let mut group = c.benchmark_group("gru_memory_update");
    let mut rng = TensorRng::new(2);
    // Paper dimensions: 472-dim message -> 100-dim memory.
    let cell = GruCell::new("g", 472, 100, &mut rng);
    for &batch in &[1usize, 8, 64] {
        let m = rng.uniform_matrix(batch, 472, -1.0, 1.0);
        let s = rng.uniform_matrix(batch, 100, -1.0, 1.0);
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |bench, _| {
            bench.iter(|| black_box(cell.forward(&m, &s)))
        });
    }
    group.finish();
}

fn bench_time_encoders(c: &mut Criterion) {
    let mut group = c.benchmark_group("time_encoder");
    let mut rng = TensorRng::new(3);
    let cos = CosTimeEncoder::new("t", 100, &mut rng);
    let samples: Vec<Float> = (0..5000).map(|_| rng.pareto(1.0, 1.2).min(1e6)).collect();
    let lut = LutTimeEncoder::calibrate("lut", &samples, 128, &cos);
    let batch: Vec<Float> = (0..64).map(|_| rng.pareto(1.0, 1.2).min(1e6)).collect();

    group.bench_function("cos_eq6", |bench| {
        bench.iter(|| black_box(cos.forward(&batch)))
    });
    group.bench_function("lut_128bins", |bench| {
        bench.iter(|| black_box(lut.forward(&batch)))
    });
    group.finish();
}

criterion_group!(benches, bench_gemm, bench_gru, bench_time_encoders);
criterion_main!(benches);
