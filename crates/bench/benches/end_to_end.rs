//! Criterion benchmark of end-to-end batch inference in the software
//! reference engine for every optimization-ladder rung — the measured
//! counterpart of the Table II throughput column.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tgnn_bench::{build_model, harness_model_config, Dataset};
use tgnn_core::{InferenceEngine, OptimizationVariant};
use tgnn_graph::EventBatch;

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference_batch_200");
    group.sample_size(10);
    let graph = Dataset::Wikipedia.graph(0.01, 11);
    let batch = EventBatch::new(graph.events()[..200].to_vec());

    for variant in OptimizationVariant::ladder() {
        group.bench_function(BenchmarkId::from_parameter(variant.label()), |b| {
            b.iter_batched(
                || {
                    let cfg = harness_model_config(&graph, variant);
                    let model = build_model(&graph, &cfg, 13);
                    InferenceEngine::new(model, graph.num_nodes())
                },
                |mut engine| black_box(engine.process_batch(&batch, &graph)),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
