//! End-to-end inference throughput measurement and perf-trajectory baseline.
//!
//! Streams the Wikipedia-like preset through the inference engine in every
//! execution mode and reports edges/sec and mean batch latency, verifying on
//! the way that the optimized f32 modes reproduce the serial reference
//! embeddings bit-for-bit.  The int8 path (`ExecMode::Quantized`) is then
//! calibrated on the warm-up split and measured on the same stream; its
//! embedding error against the serial reference (cosine similarity, max-abs)
//! is reported alongside the throughput, together with an int8-vs-f32 packed
//! GEMM microbenchmark at square attention-sized shapes.  Writes
//! `BENCH_baseline.json` (override with `--out <path>`) so future PRs can
//! track the throughput trajectory.
//!
//! Run with: `cargo run --release -p tgnn-bench --bin perf_baseline -- --scale 0.02`

use std::sync::Arc;
use std::time::Instant;
use tgnn_bench::{
    build_model, harness_model_config, merge_baseline_row, Dataset, FlagHelp, HarnessArgs,
};
use tgnn_core::quantized::quantize_model;
use tgnn_core::{ExecMode, InferenceEngine, OptimizationVariant};
use tgnn_graph::batching::fixed_size_batches;
use tgnn_quant::QuantConfig;
use tgnn_tensor::stats::{cosine_agreement, max_abs_diff};

const BATCH_SIZE: usize = 200;

struct ModeResult {
    mode: ExecMode,
    events_per_sec: f64,
    mean_latency_ms: f64,
}

/// Binary-specific flags, enumerated for `--help`.
const BASELINE_FLAGS: &[FlagHelp] = &[(
    "--out",
    "<path>",
    "baseline JSON file to (re)write (default BENCH_baseline.json)",
)];

fn main() {
    let args = HarnessArgs::parse_or_help(
        "perf_baseline",
        "End-to-end inference throughput across every ExecMode, f32-identity check, int8 \
         accuracy + GEMM microbench; rewrites the BENCH_baseline.json trajectory file.",
        BASELINE_FLAGS,
    );
    let out_path = {
        let argv: Vec<String> = std::env::args().collect();
        argv.windows(2)
            .find(|w| w[0] == "--out")
            .map(|w| w[1].clone())
            .unwrap_or_else(|| "BENCH_baseline.json".to_string())
    };

    let graph = Dataset::Wikipedia.graph(args.scale, args.seed);
    let variant = OptimizationVariant::NpMedium;
    let cfg = harness_model_config(&graph, variant);
    let model = build_model(&graph, &cfg, args.seed);
    let warm_events = graph.train_events();
    let measure_events = graph.events();
    println!(
        "dataset: Wikipedia-like @ scale {} — {} nodes, {} events, variant {}",
        args.scale,
        graph.num_nodes(),
        measure_events.len(),
        variant.label()
    );

    // Reference run (serial seed path) — also the numerical ground truth.
    let mut reference_embeddings: Vec<(u32, Vec<f32>)> = Vec::new();
    let mut results: Vec<ModeResult> = Vec::new();
    for mode in [ExecMode::Serial, ExecMode::Batched, ExecMode::Parallel] {
        let mut engine = InferenceEngine::new(model.clone(), graph.num_nodes()).with_mode(mode);
        let (eps, mean_ms, embeddings) =
            run_stream(&mut engine, warm_events, measure_events, &graph);
        println!(
            "mode {:>9?}: {:>10.0} edges/sec, mean batch latency {:.3} ms",
            mode, eps, mean_ms
        );

        if mode == ExecMode::Serial {
            reference_embeddings = embeddings;
        } else {
            assert_eq!(
                reference_embeddings, embeddings,
                "{mode:?} embeddings diverged bitwise from the serial reference"
            );
        }
        results.push(ModeResult {
            mode,
            events_per_sec: eps,
            mean_latency_ms: mean_ms,
        });
    }

    // --- Quantized run: calibrate on the warm split, serve int8, measure
    // accuracy against the serial reference.
    let quant_config = QuantConfig::default();
    let q = Arc::new(quantize_model(
        &model,
        &graph,
        &[],
        warm_events,
        BATCH_SIZE,
        quant_config,
    ));
    let mut engine = InferenceEngine::new(model.clone(), graph.num_nodes()).with_quantized(q);
    let (q_eps, q_mean_ms, q_embeddings) =
        run_stream(&mut engine, warm_events, measure_events, &graph);

    assert_eq!(reference_embeddings.len(), q_embeddings.len());
    let mut cos_min: f32 = 1.0;
    let mut cos_sum = 0.0f64;
    let mut max_err: f32 = 0.0;
    for ((v_a, e_a), (v_b, e_b)) in reference_embeddings.iter().zip(&q_embeddings) {
        assert_eq!(v_a, v_b, "quantized vertex order diverged");
        let cos = cosine_agreement(e_a, e_b);
        cos_min = cos_min.min(cos);
        cos_sum += cos as f64;
        max_err = max_err.max(max_abs_diff(e_a, e_b));
    }
    let cos_mean = cos_sum / reference_embeddings.len().max(1) as f64;
    let batched_eps = results[1].events_per_sec;
    println!(
        "mode Quantized: {:>10.0} edges/sec, mean batch latency {:.3} ms ({:+.1}% vs Batched)",
        q_eps,
        q_mean_ms,
        100.0 * (q_eps / batched_eps - 1.0)
    );
    println!(
        "     accuracy : embedding cosine vs serial — min {cos_min:.6}, mean {cos_mean:.6}, max abs err {max_err:.5}"
    );

    // --- int8 vs f32 packed GEMM microbenchmark at square shapes.
    let gemm = gemm_i8_microbench(&[64, 128, 256]);
    for &(n, f32_us, i8_us) in &gemm {
        println!(
            "gemm {n:>4}²: f32 packed {f32_us:>8.1} µs, int8 {i8_us:>8.1} µs ({:.2}x)",
            f32_us / i8_us
        );
    }

    let serial = results[0].events_per_sec;
    let best = results
        .iter()
        .map(|r| r.events_per_sec)
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "speedup over serial reference: {:.2}x (bitwise-identical embeddings)",
        best / serial
    );

    // Hand-rolled JSON (no serde_json in this offline environment).
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"dataset\": \"wikipedia_like\",\n  \"scale\": {},\n",
        args.scale
    ));
    json.push_str(&format!(
        "  \"seed\": {},\n  \"batch_size\": {},\n  \"variant\": \"{}\",\n",
        args.seed,
        BATCH_SIZE,
        variant.label()
    ));
    json.push_str(&format!("  \"num_events\": {},\n", measure_events.len()));
    json.push_str("  \"modes\": {\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    \"{:?}\": {{ \"events_per_sec\": {:.1}, \"mean_batch_latency_ms\": {:.4} }}{}\n",
            r.mode,
            r.events_per_sec,
            r.mean_latency_ms,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"speedup_over_serial\": {:.3},\n",
        best / serial
    ));
    json.push_str("  \"embeddings_bitwise_identical\": true\n}\n");
    std::fs::write(&out_path, json).expect("failed to write throughput baseline");

    // The int8 row rides in via the shared merge helper so `serve_bench` and
    // `quant_gate` can later extend the same file.
    let gemm_rows: Vec<String> = gemm
        .iter()
        .map(|&(n, f32_us, i8_us)| format!("\"{n}\": {:.3}", f32_us / i8_us))
        .collect();
    let quant_row = format!(
        "{{\n    \"exec_mode\": \"Quantized\",\n    \"events_per_sec\": {:.1},\n    \"mean_batch_latency_ms\": {:.4},\n    \"speedup_vs_batched\": {:.3},\n    \"embedding_cosine_min\": {:.6},\n    \"embedding_cosine_mean\": {:.6},\n    \"embedding_max_abs_err\": {:.6},\n    \"clip_percentile\": {},\n    \"quantize_gru\": {},\n    \"gemm_i8_speedup\": {{ {} }}\n  }}",
        q_eps,
        q_mean_ms,
        q_eps / batched_eps,
        cos_min,
        cos_mean,
        max_err,
        quant_config.clip_percentile,
        quant_config.quantize_gru,
        gemm_rows.join(", "),
    );
    merge_baseline_row(&out_path, "quant", &quant_row);
    println!("wrote {out_path}");
}

/// Warm up, stream the measurement events in fixed-size batches, and return
/// `(events/sec, mean latency ms, embeddings)`.
fn run_stream(
    engine: &mut InferenceEngine,
    warm_events: &[tgnn_graph::InteractionEvent],
    measure_events: &[tgnn_graph::InteractionEvent],
    graph: &tgnn_graph::TemporalGraph,
) -> (f64, f64, Vec<(u32, Vec<f32>)>) {
    engine.warm_up(warm_events, graph);
    let batches = fixed_size_batches(measure_events, BATCH_SIZE);
    let start = Instant::now();
    let mut embeddings: Vec<(u32, Vec<f32>)> = Vec::new();
    let mut latencies = Vec::with_capacity(batches.len());
    for batch in &batches {
        let out = engine.process_batch(batch, graph);
        latencies.push(out.latency);
        embeddings.extend(out.embeddings);
    }
    let elapsed = start.elapsed().as_secs_f64();
    let eps = measure_events.len() as f64 / elapsed;
    let mean_ms = latencies.iter().map(|l| l.as_secs_f64()).sum::<f64>()
        / latencies.len().max(1) as f64
        * 1e3;
    (eps, mean_ms, embeddings)
}

/// Times the f32 packed kernel against the int8 kernel (activation
/// quantization included — the cost the engine actually pays) at square
/// shapes.  Returns `(n, f32 µs, int8 µs)` per shape.
fn gemm_i8_microbench(sizes: &[usize]) -> Vec<(usize, f64, f64)> {
    use tgnn_tensor::gemm::matmul_packed_into;
    use tgnn_tensor::gemm_i8::{
        matmul_i8_dequant_into, pack_rhs_i8, packed_rhs_len, padded_k, quantize_slice_into,
    };
    use tgnn_tensor::{Matrix, TensorRng, Workspace};

    let mut rng = TensorRng::new(11);
    let mut out = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let a = rng.uniform_matrix(n, n, -1.0, 1.0);
        let b = rng.uniform_matrix(n, n, -1.0, 1.0);
        let mut ws = Workspace::new();
        let mut c = Matrix::zeros(n, n);
        let iters = (100_000_000 / (n * n * n)).max(5);

        matmul_packed_into(&a, &b, &mut c, &mut ws); // warm the pack buffer
        let start = Instant::now();
        for _ in 0..iters {
            matmul_packed_into(&a, &b, &mut c, &mut ws);
        }
        let f32_us = start.elapsed().as_secs_f64() / iters as f64 * 1e6;

        // Weights pre-quantized and pre-packed (as QuantizedLinear does);
        // activations quantized per call.
        let bt = b.transpose();
        let mut bt_q = vec![0i8; n * n];
        for i in 0..n {
            quantize_slice_into(bt.row(i), 1.0 / 127.0, &mut bt_q[i * n..(i + 1) * n]);
        }
        let mut packed = vec![0i8; packed_rhs_len(n, n)];
        pack_rhs_i8(&bt_q, n, n, &mut packed);
        let scales = vec![1.0f32; n];
        let kp = padded_k(n);
        let mut a_q = vec![0i8; n * kp];
        let start = Instant::now();
        for _ in 0..iters {
            for i in 0..n {
                quantize_slice_into(a.row(i), 1.0 / 127.0, &mut a_q[i * kp..(i + 1) * kp]);
            }
            matmul_i8_dequant_into(&a_q, n, n, &packed, n, &scales, None, &mut c);
        }
        let i8_us = start.elapsed().as_secs_f64() / iters as f64 * 1e6;
        out.push((n, f32_us, i8_us));
    }
    out
}
