//! End-to-end inference throughput measurement and perf-trajectory baseline.
//!
//! Streams the Wikipedia-like preset through the inference engine in every
//! execution mode and reports edges/sec and mean batch latency, verifying on
//! the way that the optimized modes reproduce the serial reference
//! embeddings bit-for-bit.  Writes `BENCH_baseline.json` (override with
//! `--out <path>`) so future PRs can track the throughput trajectory.
//!
//! Run with: `cargo run --release -p tgnn-bench --bin perf_baseline -- --scale 0.02`

use std::time::Instant;
use tgnn_bench::{build_model, harness_model_config, Dataset, HarnessArgs};
use tgnn_core::{ExecMode, InferenceEngine, OptimizationVariant};
use tgnn_graph::batching::fixed_size_batches;

const BATCH_SIZE: usize = 200;

struct ModeResult {
    mode: ExecMode,
    events_per_sec: f64,
    mean_latency_ms: f64,
}

fn main() {
    let args = HarnessArgs::parse();
    let out_path = {
        let argv: Vec<String> = std::env::args().collect();
        argv.windows(2)
            .find(|w| w[0] == "--out")
            .map(|w| w[1].clone())
            .unwrap_or_else(|| "BENCH_baseline.json".to_string())
    };

    let graph = Dataset::Wikipedia.graph(args.scale, args.seed);
    let variant = OptimizationVariant::NpMedium;
    let cfg = harness_model_config(&graph, variant);
    let model = build_model(&graph, &cfg, args.seed);
    let warm_events = graph.train_events();
    let measure_events = graph.events();
    println!(
        "dataset: Wikipedia-like @ scale {} — {} nodes, {} events, variant {}",
        args.scale,
        graph.num_nodes(),
        measure_events.len(),
        variant.label()
    );

    // Reference run (serial seed path) — also the numerical ground truth.
    let mut reference_embeddings: Vec<(u32, Vec<f32>)> = Vec::new();
    let mut results: Vec<ModeResult> = Vec::new();
    for mode in [ExecMode::Serial, ExecMode::Batched, ExecMode::Parallel] {
        let mut engine = InferenceEngine::new(model.clone(), graph.num_nodes()).with_mode(mode);
        engine.warm_up(warm_events, &graph);
        let batches = fixed_size_batches(measure_events, BATCH_SIZE);

        let start = Instant::now();
        let mut embeddings: Vec<(u32, Vec<f32>)> = Vec::new();
        let mut latencies = Vec::with_capacity(batches.len());
        for batch in &batches {
            let out = engine.process_batch(batch, &graph);
            latencies.push(out.latency);
            embeddings.extend(out.embeddings);
        }
        let elapsed = start.elapsed().as_secs_f64();

        let eps = measure_events.len() as f64 / elapsed;
        let mean_ms = latencies.iter().map(|l| l.as_secs_f64()).sum::<f64>()
            / latencies.len().max(1) as f64
            * 1e3;
        println!(
            "mode {:>8?}: {:>10.0} edges/sec, mean batch latency {:.3} ms",
            mode, eps, mean_ms
        );

        if mode == ExecMode::Serial {
            reference_embeddings = embeddings;
        } else {
            assert_eq!(
                reference_embeddings, embeddings,
                "{mode:?} embeddings diverged bitwise from the serial reference"
            );
        }
        results.push(ModeResult {
            mode,
            events_per_sec: eps,
            mean_latency_ms: mean_ms,
        });
    }

    let serial = results[0].events_per_sec;
    let best = results
        .iter()
        .map(|r| r.events_per_sec)
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "speedup over serial reference: {:.2}x (bitwise-identical embeddings)",
        best / serial
    );

    // Hand-rolled JSON (no serde_json in this offline environment).
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"dataset\": \"wikipedia_like\",\n  \"scale\": {},\n",
        args.scale
    ));
    json.push_str(&format!(
        "  \"seed\": {},\n  \"batch_size\": {},\n  \"variant\": \"{}\",\n",
        args.seed,
        BATCH_SIZE,
        variant.label()
    ));
    json.push_str(&format!("  \"num_events\": {},\n", measure_events.len()));
    json.push_str("  \"modes\": {\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    \"{:?}\": {{ \"events_per_sec\": {:.1}, \"mean_batch_latency_ms\": {:.4} }}{}\n",
            r.mode,
            r.events_per_sec,
            r.mean_latency_ms,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"speedup_over_serial\": {:.3},\n",
        best / serial
    ));
    json.push_str("  \"embeddings_bitwise_identical\": true\n}\n");
    std::fs::write(&out_path, json).expect("failed to write throughput baseline");
    println!("wrote {out_path}");
}
