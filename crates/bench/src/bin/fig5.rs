//! Figure 5 — latency and throughput versus batch size for the CPU/GPU
//! baselines and the two FPGA designs (NP(L/M/S) models), plus the real-time
//! 15-minute-window latency series.

use tgnn_bench::{build_model, Dataset, HarnessArgs};
use tgnn_core::OptimizationVariant;
use tgnn_data::SECONDS_PER_DAY;
use tgnn_graph::batching::time_window_batches;
use tgnn_hwsim::baseline::{BaselinePlatform, BaselineSimulator};
use tgnn_hwsim::design::DesignConfig;
use tgnn_hwsim::device::FpgaDevice;
use tgnn_hwsim::AcceleratorSim;

const BATCH_SIZES: [usize; 6] = [100, 200, 500, 1000, 2000, 4000];

fn main() {
    let args = HarnessArgs::parse();
    println!("# Figure 5 — latency/throughput vs batch size, and real-time latency\n");

    for dataset in Dataset::all() {
        let graph = dataset.graph(args.scale, args.seed);
        println!("## {} ({} events)", dataset.name(), graph.num_events());

        // --- Left plots: latency and throughput vs batch size.
        tgnn_bench::print_header(&[
            "batch size",
            "CPU lat (ms)",
            "GPU lat (ms)",
            "U200 NP(L) (ms)",
            "U200 NP(M) (ms)",
            "U200 NP(S) (ms)",
            "ZCU104 NP(M) (ms)",
            "CPU thpt (kE/s)",
            "GPU thpt (kE/s)",
            "U200 NP(M) thpt (kE/s)",
        ]);

        let paper_baseline = tgnn_bench::paper_model_config(dataset, OptimizationVariant::Baseline);
        let cpu = BaselineSimulator::new(BaselinePlatform::CpuMultiThread, paper_baseline.clone());
        let gpu = BaselineSimulator::new(BaselinePlatform::Gpu, paper_baseline);

        for &batch_size in &BATCH_SIZES {
            let mut cells = vec![batch_size.to_string()];
            cells.push(tgnn_bench::secs_to_ms(cpu.estimate(batch_size).latency));
            cells.push(tgnn_bench::secs_to_ms(gpu.estimate(batch_size).latency));

            let mut u200_npm_tp = 0.0;
            for variant in [
                OptimizationVariant::NpLarge,
                OptimizationVariant::NpMedium,
                OptimizationVariant::NpSmall,
            ] {
                let report = simulate(
                    &graph,
                    variant,
                    DesignConfig::u200(),
                    FpgaDevice::alveo_u200(),
                    batch_size,
                    args.seed,
                );
                cells.push(tgnn_bench::secs_to_ms(report.mean_latency()));
                if variant == OptimizationVariant::NpMedium {
                    u200_npm_tp = report.throughput_eps();
                }
            }
            let zcu = simulate(
                &graph,
                OptimizationVariant::NpMedium,
                DesignConfig::zcu104(),
                FpgaDevice::zcu104(),
                batch_size,
                args.seed,
            );
            cells.push(tgnn_bench::secs_to_ms(zcu.mean_latency()));
            cells.push(format!(
                "{:.1}",
                cpu.estimate(batch_size).throughput_eps / 1e3
            ));
            cells.push(format!(
                "{:.1}",
                gpu.estimate(batch_size).throughput_eps / 1e3
            ));
            cells.push(format!("{:.1}", u200_npm_tp / 1e3));
            tgnn_bench::print_row(&cells);
        }

        // Headline speedups at batch size 1000 with NP(M).
        let u200 = simulate(
            &graph,
            OptimizationVariant::NpMedium,
            DesignConfig::u200(),
            FpgaDevice::alveo_u200(),
            1000,
            args.seed,
        );
        let cpu_lat = cpu.estimate(1000).latency;
        let gpu_lat = gpu.estimate(1000).latency;
        println!(
            "\nU200 NP(M) @1000: latency speedup vs CPU {:.1}x, vs GPU {:.1}x\n",
            cpu_lat / u200.mean_latency(),
            gpu_lat / u200.mean_latency()
        );

        // --- Right plots: real-time latency, one batch per 15-minute window.
        println!("### Real-time inference (15-minute windows), NP(M) on U200 vs GPU");
        tgnn_bench::print_header(&[
            "time (days)",
            "window edges",
            "U200 latency (ms)",
            "GPU latency (ms)",
        ]);
        let test = graph.test_events();
        if !test.is_empty() {
            let windows = time_window_batches(test, 15.0 * 60.0);
            let mut run_cfg =
                tgnn_bench::paper_model_config(dataset, OptimizationVariant::NpMedium);
            run_cfg.node_feature_dim = graph.node_feature_dim();
            run_cfg.edge_feature_dim = graph.edge_feature_dim();
            let model = build_model(&graph, &run_cfg, args.seed);
            let mut sim = AcceleratorSim::new(
                model,
                graph.num_nodes(),
                FpgaDevice::alveo_u200(),
                DesignConfig::u200(),
            );
            sim.warm_up(graph.train_events(), &graph);
            sim.warm_up(graph.val_events(), &graph);
            let report = sim.simulate_batches(&windows, &graph);
            let start = test[0].timestamp;
            // Print every k-th window so the table stays readable.
            let stride = (windows.len() / 24).max(1);
            for (i, (window, simulated)) in windows.iter().zip(&report.batches).enumerate() {
                if i % stride != 0 {
                    continue;
                }
                let day = (window.start_time().unwrap_or(start) - start) / SECONDS_PER_DAY;
                tgnn_bench::print_row(&[
                    format!("{:.2}", day),
                    window.len().to_string(),
                    tgnn_bench::secs_to_ms(simulated.latency),
                    tgnn_bench::secs_to_ms(gpu.estimate(window.len().max(1)).latency),
                ]);
            }
        }
        println!();
    }
}

fn dataset_of(graph: &tgnn_graph::TemporalGraph) -> Dataset {
    if graph.node_feature_dim() > 0 {
        Dataset::Gdelt
    } else if graph.name().starts_with("reddit") {
        Dataset::Reddit
    } else {
        Dataset::Wikipedia
    }
}

fn simulate(
    graph: &tgnn_graph::TemporalGraph,
    variant: OptimizationVariant,
    design: DesignConfig,
    device: FpgaDevice,
    batch_size: usize,
    seed: u64,
) -> tgnn_hwsim::SimulatedStreamReport {
    // Paper-dimension model so the simulated hardware numbers are at the
    // paper's scale (the feature dimensions of the synthetic datasets match
    // the real ones, so this is directly runnable).
    let mut run_cfg = tgnn_bench::paper_model_config(dataset_of(graph), variant);
    run_cfg.node_feature_dim = graph.node_feature_dim();
    run_cfg.edge_feature_dim = graph.edge_feature_dim();
    let model = build_model(graph, &run_cfg, seed);
    let mut sim = AcceleratorSim::new(model, graph.num_nodes(), device, design);
    let events = graph.events();
    let take = events.len().min(4 * batch_size.max(500));
    sim.simulate_stream(&events[..take], graph, batch_size)
}
