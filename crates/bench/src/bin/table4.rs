//! Table III and Table IV — platform specifications, design configurations,
//! and estimated resource utilization of the two accelerator design points.

use tgnn_bench::{paper_model_config, Dataset};
use tgnn_core::OptimizationVariant;
use tgnn_hwsim::design::{estimate_resources, map_to_dies, DesignConfig};
use tgnn_hwsim::device::{FpgaDevice, PlatformSpec};

fn main() {
    println!("# Table III — hardware platforms\n");
    tgnn_bench::print_header(&[
        "platform",
        "dies/sockets",
        "resources per die",
        "ext. memory BW",
    ]);
    for dev in [FpgaDevice::alveo_u200(), FpgaDevice::zcu104()] {
        tgnn_bench::print_row(&[
            dev.name.clone(),
            dev.num_dies.to_string(),
            format!(
                "{}K LUTs, {} DSPs, {} BRAMs, {} URAMs",
                dev.luts_per_die / 1000,
                dev.dsps_per_die,
                dev.brams_per_die,
                dev.urams_per_die
            ),
            format!("{} GB/s", dev.ddr_bandwidth_gbps),
        ]);
    }
    for p in [PlatformSpec::xeon_gold_5120_dual(), PlatformSpec::titan_x()] {
        tgnn_bench::print_row(&[
            p.name.clone(),
            "-".into(),
            format!("{} lanes @ {} MHz", p.parallel_lanes, p.frequency_mhz),
            format!("{} GB/s", p.memory_bandwidth_gbps),
        ]);
    }

    println!("\n# Table IV — design configurations and resource utilization\n");
    let model = paper_model_config(Dataset::Wikipedia, OptimizationVariant::NpMedium);
    tgnn_bench::print_header(&[
        "design",
        "Ncu",
        "Sg^2",
        "S_FAM",
        "S_FTM",
        "freq (MHz)",
        "LUT",
        "DSP",
        "BRAM",
        "URAM",
        "fits",
        "inter-die links",
    ]);
    for (design, device) in [
        (DesignConfig::u200(), FpgaDevice::alveo_u200()),
        (DesignConfig::zcu104(), FpgaDevice::zcu104()),
    ] {
        let usage = estimate_resources(&design, &model);
        let mapping = map_to_dies(&design, &device);
        let (l, d, b, u) = usage.utilization(&device);
        tgnn_bench::print_row(&[
            design.name.clone(),
            design.num_cu.to_string(),
            format!("{}x{}", design.sg, design.sg),
            design.s_fam.to_string(),
            format!("{}x{}", design.s_ftm, design.s_ftm),
            format!("{}", design.frequency_mhz),
            format!("{}k ({:.0}%)", usage.luts / 1000, l * 100.0),
            format!("{} ({:.0}%)", usage.dsps, d * 100.0),
            format!("{} ({:.0}%)", usage.brams, b * 100.0),
            format!("{} ({:.0}%)", usage.urams, u * 100.0),
            usage.fits(&device).to_string(),
            mapping.inter_die_links.to_string(),
        ]);
    }
    println!("\n(paper-reported utilization for comparison: U200 563k LUT / 2512 DSP / 1415 BRAM / 448 URAM @250 MHz;");
    println!(" ZCU104 125k LUT / 744 DSP / 240 BRAM / 0 URAM @125 MHz)");
}
