//! Figure 6 — predicted (analytical performance model, Section V) versus
//! actual (accelerator simulation) latency and throughput for the NP(M)
//! model on the Wikipedia-like dataset, on both FPGA design points.

use tgnn_bench::{build_model, Dataset, HarnessArgs};
use tgnn_core::OptimizationVariant;
use tgnn_hwsim::design::DesignConfig;
use tgnn_hwsim::device::FpgaDevice;
use tgnn_hwsim::{AcceleratorSim, DdrModel, PerformanceModel};

const BATCH_SIZES: [usize; 6] = [100, 200, 500, 1000, 2000, 4000];

fn main() {
    let args = HarnessArgs::parse();
    println!(
        "# Figure 6 — performance-model prediction vs simulated execution (NP(M), Wikipedia)\n"
    );

    let graph = Dataset::Wikipedia.graph(args.scale, args.seed);
    let mut run_cfg =
        tgnn_bench::paper_model_config(Dataset::Wikipedia, OptimizationVariant::NpMedium);
    run_cfg.node_feature_dim = graph.node_feature_dim();
    run_cfg.edge_feature_dim = graph.edge_feature_dim();

    for (design, device) in [
        (DesignConfig::u200(), FpgaDevice::alveo_u200()),
        (DesignConfig::zcu104(), FpgaDevice::zcu104()),
    ] {
        println!("## {}", device.name);
        tgnn_bench::print_header(&[
            "batch size",
            "predicted lat (ms)",
            "actual lat (ms)",
            "lat err %",
            "predicted thpt (kE/s)",
            "actual thpt (kE/s)",
            "thpt err %",
        ]);

        // The prediction uses the same model dimensions as the run config so
        // the two columns are comparable.
        let perf = PerformanceModel::new(
            design.clone(),
            run_cfg.clone(),
            DdrModel::new_gbps(device.ddr_bandwidth_gbps),
        );

        let mut lat_errs = Vec::new();
        let mut thpt_errs = Vec::new();
        for &batch_size in &BATCH_SIZES {
            let prediction = perf.predict(batch_size);

            let model = build_model(&graph, &run_cfg, args.seed);
            let mut sim =
                AcceleratorSim::new(model, graph.num_nodes(), device.clone(), design.clone());
            let take = graph.num_events().min(4 * batch_size.max(500));
            let report = sim.simulate_stream(&graph.events()[..take], &graph, batch_size);

            // The closed-form model assumes the nominal workload of 2
            // embeddings / 2 memory updates per edge.  On a small synthetic
            // graph large batches touch the same vertices repeatedly, so the
            // realised workload is smaller; the workload-corrected prediction
            // scales the nominal one by the measured embeddings-per-edge
            // ratio (the same "algorithm parameter" calibration the paper's
            // model performs).
            let workload_ratio =
                (report.num_embeddings as f64 / (2.0 * report.num_events as f64)).min(1.0);
            let corrected_latency = prediction.latency * workload_ratio;
            let corrected_thpt = prediction.throughput_eps / workload_ratio.max(1e-9);

            let actual_lat = report.mean_latency();
            let actual_thpt = report.throughput_eps();
            let lat_err = 100.0 * (corrected_latency - actual_lat).abs() / actual_lat.max(1e-12);
            let thpt_err = 100.0 * (corrected_thpt - actual_thpt).abs() / actual_thpt.max(1e-12);
            lat_errs.push(lat_err);
            thpt_errs.push(thpt_err);

            tgnn_bench::print_row(&[
                batch_size.to_string(),
                format!(
                    "{} ({} corrected)",
                    tgnn_bench::secs_to_ms(prediction.latency),
                    tgnn_bench::secs_to_ms(corrected_latency)
                ),
                tgnn_bench::secs_to_ms(actual_lat),
                format!("{:.1}%", lat_err),
                format!("{:.1}", corrected_thpt / 1e3),
                format!("{:.1}", actual_thpt / 1e3),
                format!("{:.1}%", thpt_err),
            ]);
        }
        println!(
            "\nmean prediction error (workload-corrected): latency {:.1}%, throughput {:.1}% (paper reports 9.9–12.8%)\n",
            lat_errs.iter().sum::<f64>() / lat_errs.len() as f64,
            thpt_errs.iter().sum::<f64>() / thpt_errs.len() as f64
        );
    }
}
