//! Figure 1 — frequency histogram of the time-encoder input Δt on the
//! Wikipedia-like and Reddit-like datasets, plus the equal-frequency LUT bin
//! edges derived from it (Section III-C).

use tgnn_bench::{Dataset, HarnessArgs};
use tgnn_data::delta_t::{fig1_histogram, lut_bin_edges, mass_below, memory_delta_t};
use tgnn_data::SECONDS_PER_DAY;

fn main() {
    let args = HarnessArgs::parse();
    println!("# Figure 1 — Δt distribution of the time-encoder input\n");

    for dataset in [Dataset::Wikipedia, Dataset::Reddit] {
        let graph = dataset.graph(args.scale, args.seed);
        let deltas = memory_delta_t(graph.events(), graph.num_nodes());
        let hist = fig1_histogram(&deltas, 25.0, 25);

        println!("## {} ({} Δt samples)", dataset.name(), deltas.len());
        tgnn_bench::print_header(&["Δt (days)", "frequency", "bar"]);
        let max = hist.counts().iter().copied().max().unwrap_or(1).max(1);
        for (center, count) in hist.series() {
            let bar_len = (40.0 * count as f64 / max as f64).round() as usize;
            tgnn_bench::print_row(&[
                format!("{:.1}", center / SECONDS_PER_DAY as f32),
                count.to_string(),
                "#".repeat(bar_len),
            ]);
        }
        println!(
            "\nmass below 1 day: {:.1}%  |  mass below 5 days: {:.1}%",
            100.0 * mass_below(&deltas, SECONDS_PER_DAY as f32),
            100.0 * mass_below(&deltas, 5.0 * SECONDS_PER_DAY as f32)
        );

        let edges = lut_bin_edges(&deltas, 128);
        println!(
            "equal-frequency LUT: {} bins, first edge {:.1}s, median edge {:.1}s, last edge {:.1} days\n",
            edges.len() - 1,
            edges[1],
            edges[edges.len() / 2],
            edges.last().unwrap() / SECONDS_PER_DAY as f32
        );
    }
}
