//! Table II — accuracy (AP), complexity, and single-thread throughput of the
//! optimization ladder Baseline → +SAT → +LUT → +NP(L/M/S).
//!
//! The baseline (teacher) is trained with self-supervision; every other rung
//! is a student trained with knowledge distillation from that teacher
//! (Section III-A).  kMEM/kMAC come from the complexity model at the paper's
//! dimensions; the throughput column is measured by running the Rust
//! reference single-threaded on the synthetic test split.

use tgnn_bench::{build_model, harness_model_config, Dataset, HarnessArgs};
use tgnn_core::complexity::per_embedding_ops;
use tgnn_core::distillation::{distill, DistillationConfig};
use tgnn_core::training::{TrainConfig, Trainer};
use tgnn_core::{InferenceEngine, OptimizationVariant};

fn main() {
    let args = HarnessArgs::parse();
    println!("# Table II — model-optimization ladder (accuracy / complexity / throughput)");
    println!(
        "(synthetic datasets at scale {}, {} training epochs)\n",
        args.scale, args.epochs
    );

    for dataset in Dataset::all() {
        let graph = dataset.graph(args.scale, args.seed);
        println!(
            "## {} ({} events, {} nodes)",
            dataset.name(),
            graph.num_events(),
            graph.num_nodes()
        );

        let train_cfg = TrainConfig {
            epochs: args.epochs,
            batch_size: 100,
            learning_rate: 1e-3,
            decoder_hidden: 32,
            seed: args.seed,
        };
        let kd_cfg = DistillationConfig {
            temperature: 1.0,
            kd_weight: 0.5,
            train: train_cfg.clone(),
        };
        let trainer = Trainer::new(train_cfg.clone());

        // Teacher.
        let teacher_cfg = harness_model_config(&graph, OptimizationVariant::Baseline);
        let teacher = trainer.train(&teacher_cfg, &graph);
        let teacher_ap = trainer.evaluate(&teacher, &graph, 200).average_precision;

        tgnn_bench::print_header(&[
            "model",
            "|v|",
            "|e|",
            "|N(v)|",
            "kMEM",
            "kMEM %",
            "kMAC",
            "kMAC %",
            "AP",
            "ΔAP",
            "thpt (kE/s)",
            "speedup",
        ]);

        let baseline_ops = per_embedding_ops(&tgnn_bench::paper_model_config(
            dataset,
            OptimizationVariant::Baseline,
        ));
        let mut baseline_throughput = None;

        for variant in OptimizationVariant::ladder() {
            let paper_cfg = tgnn_bench::paper_model_config(dataset, variant);
            let ops = per_embedding_ops(&paper_cfg);

            // Accuracy: teacher for the baseline rung, distilled student otherwise.
            let ap = if variant == OptimizationVariant::Baseline {
                teacher_ap
            } else {
                let student_cfg = harness_model_config(&graph, variant);
                let (student, _) = distill(&teacher, &student_cfg, &graph, &kd_cfg);
                trainer.evaluate(&student, &graph, 200).average_precision
            };

            // Single-thread throughput of the Rust reference.
            let run_cfg = harness_model_config(&graph, variant);
            let model = build_model(&graph, &run_cfg, args.seed);
            let mut engine = InferenceEngine::new(model, graph.num_nodes());
            engine.warm_up(graph.train_events(), &graph);
            let take = graph.test_events().len().min(3_000);
            let report = engine.run_stream(&graph.test_events()[..take], &graph, 200);
            let throughput_ke = report.throughput_eps() / 1e3;
            let speedup = match baseline_throughput {
                None => {
                    baseline_throughput = Some(throughput_ke);
                    1.0
                }
                Some(base) => throughput_ke / base,
            };

            tgnn_bench::print_row(&[
                variant.label().to_string(),
                paper_cfg.node_feature_dim.to_string(),
                paper_cfg.edge_feature_dim.to_string(),
                paper_cfg.neighbor_budget.to_string(),
                format!("{:.1}", ops.total().mems as f64 / 1e3),
                format!(
                    "{:.1}%",
                    100.0 * ops.total().mems as f64 / baseline_ops.total().mems as f64
                ),
                format!("{:.1}", ops.total().macs as f64 / 1e3),
                format!(
                    "{:.1}%",
                    100.0 * ops.total().macs as f64 / baseline_ops.total().macs as f64
                ),
                format!("{:.4}", ap),
                format!("{:+.4}", ap - teacher_ap),
                format!("{:.2}", throughput_ke),
                format!("{:.2}x", speedup),
            ]);
        }
        println!();
    }
}
