//! Streaming-pipeline throughput/latency benchmark and identity check.
//!
//! Streams the Wikipedia-like preset through the pipelined `StreamServer`,
//! verifies the served embeddings are **bit-identical** to `ExecMode::Serial`
//! replaying the exact micro-batch sequence the server used, and extends
//! `BENCH_baseline.json` (written by `perf_baseline`) with a `"pipeline"`
//! row: events/sec plus mean/p50/p95/p99 micro-batch latency.
//!
//! Run with: `cargo run --release -p tgnn-bench --bin serve_bench -- --scale 0.02`
//!
//! `--gnn-workers <n>` sizes the data-parallel GNN compute pool (default 1);
//! the identity check holds for every pool size, and the count is recorded
//! in the `"pipeline"` row.  `--smoke` runs a tiny fixed-seed configuration
//! and skips the JSON merge — the CI step after `perf_baseline`, failing
//! (via the identity assertion) on any pipelined-vs-serial divergence.

use std::sync::Arc;
use std::time::Duration;
use tgnn_bench::{build_model, harness_model_config, Dataset, HarnessArgs};
use tgnn_core::{ExecMode, InferenceEngine, OptimizationVariant};
use tgnn_graph::EventBatch;
use tgnn_serve::{ServeConfig, ServeReport, ServedBatch, StreamServer};

const MAX_BATCH: usize = 200;
const NUM_SHARDS: usize = 4;

fn main() {
    let mut args = HarnessArgs::parse();
    let argv: Vec<String> = std::env::args().collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    if smoke {
        args.scale = 0.005;
    }
    let out_path = argv
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "BENCH_baseline.json".to_string());
    // Unlike the HarnessArgs flags, a missing or malformed value here is a
    // hard error: CI's 2-worker identity check must not silently degrade to
    // a 1-worker run.
    let gnn_workers: usize = match argv.iter().position(|a| a == "--gnn-workers") {
        None => 1,
        Some(i) => argv
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                panic!(
                    "--gnn-workers: expected a worker count, got {:?}",
                    argv.get(i + 1)
                )
            }),
    };

    let graph = Arc::new(Dataset::Wikipedia.graph(args.scale, args.seed));
    let variant = OptimizationVariant::NpMedium;
    let cfg = harness_model_config(&graph, variant);
    let model = build_model(&graph, &cfg, args.seed);
    // Warm the vertex state on the train split, then measure on the events
    // after it — the served stream must stay chronological past the warm-up.
    let warm_events = graph.train_events().to_vec();
    let measure_events = graph.events()[graph.train_end()..].to_vec();
    println!(
        "dataset: Wikipedia-like @ scale {} — {} nodes, {} events, variant {}, {} shards, {} gnn worker(s){}",
        args.scale,
        graph.num_nodes(),
        measure_events.len(),
        variant.label(),
        NUM_SHARDS,
        gnn_workers,
        if smoke { " (smoke)" } else { "" }
    );

    // --- Pipelined serving run.
    let serve_config = ServeConfig {
        max_batch: MAX_BATCH,
        // Size-only sealing keeps the micro-batch boundaries deterministic
        // for the identity replay below.
        batch_deadline: Duration::from_secs(3600),
        num_shards: NUM_SHARDS,
        gnn_workers,
        ..ServeConfig::default()
    };
    let mut server = StreamServer::new(model.clone(), graph.clone(), serve_config);
    server.warm_up(&warm_events);
    let mut served: Vec<ServedBatch> = Vec::new();
    for &e in &measure_events {
        server.submit(e).expect("chronological stream");
        while let Some(b) = server.poll() {
            served.push(b);
        }
    }
    let report = server.drain();
    while let Some(b) = server.poll() {
        served.push(b);
    }
    println!(
        "pipeline: {:>10.0} edges/sec over {} micro-batches — latency mean {:.3} ms, p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms",
        report.throughput_eps,
        report.num_batches,
        report.latency.mean_ms,
        report.latency.p50_ms,
        report.latency.p95_ms,
        report.latency.p99_ms
    );
    assert!(report.commit_log_clean, "pipeline violated chronology");

    // --- Identity check: serial reference over the served batch sequence.
    let mut engine = InferenceEngine::new(model, graph.num_nodes()).with_mode(ExecMode::Serial);
    engine.warm_up(&warm_events, &graph);
    let mut checked_events = 0usize;
    for batch in &served {
        let reference = engine.process_batch(&EventBatch::new(batch.events.clone()), &graph);
        assert_eq!(
            reference.embeddings, batch.embeddings,
            "pipeline embeddings diverged bitwise from the serial reference in epoch {}",
            batch.epoch
        );
        checked_events += batch.events.len();
    }
    assert_eq!(
        checked_events,
        measure_events.len(),
        "events lost in flight"
    );
    println!(
        "identity: {} embeddings across {} micro-batches bit-identical to ExecMode::Serial",
        report.num_embeddings,
        served.len()
    );

    if smoke {
        println!("smoke mode: skipping {out_path} update");
        return;
    }
    merge_pipeline_row(&out_path, &report);
    println!("wrote pipeline row to {out_path}");
}

/// Inserts (or replaces) a top-level `"pipeline"` object in the hand-rolled
/// JSON baseline file, creating the file if `perf_baseline` has not run.
fn merge_pipeline_row(path: &str, report: &ServeReport) {
    let row = format!(
        "  \"pipeline\": {{\n    \"events_per_sec\": {:.1},\n    \"num_batches\": {},\n    \"max_batch\": {},\n    \"num_shards\": {},\n    \"gnn_workers\": {},\n    \"latency_ms\": {{ \"mean\": {:.4}, \"p50\": {:.4}, \"p95\": {:.4}, \"p99\": {:.4} }},\n    \"backpressure_blocks\": {},\n    \"embeddings_bitwise_identical_to_serial\": true\n  }}",
        report.throughput_eps,
        report.num_batches,
        MAX_BATCH,
        report.num_shards,
        report.gnn_workers,
        report.latency.mean_ms,
        report.latency.p50_ms,
        report.latency.p95_ms,
        report.latency.p99_ms,
        report.backpressure_blocks,
    );
    let base = std::fs::read_to_string(path).unwrap_or_default();
    let mut body = base;
    // Drop any previous pipeline row (idempotent re-runs).
    if let Some(idx) = body.find(",\n  \"pipeline\"") {
        body.truncate(idx);
        body.push_str("\n}\n");
    }
    let json = match body.trim_end().strip_suffix('}') {
        Some(prefix) if !prefix.trim().is_empty() => {
            format!("{},\n{row}\n}}\n", prefix.trim_end())
        }
        _ => format!("{{\n{row}\n}}\n"),
    };
    std::fs::write(path, json).expect("failed to write pipeline baseline row");
}
