//! Streaming-pipeline throughput/latency benchmark, identity check, and
//! multi-tenant overload demonstration.
//!
//! Streams the Wikipedia-like preset through the pipelined `StreamServer`,
//! verifies the served embeddings against a reference engine replaying the
//! exact micro-batch sequence the server used, and extends
//! `BENCH_baseline.json` (written by `perf_baseline`) with a `"pipeline"`
//! row: events/sec, mean/p50/p95/p99 micro-batch latency, and per-tenant
//! admission statistics.
//!
//! Run with: `cargo run --release -p tgnn-bench --bin serve_bench -- --scale 0.02`
//! (see `--help` or `crates/bench/README.md` for every flag).
//!
//! `--exec-mode {batched,quantized}` selects the numeric path:
//!
//! * `batched` (default) — f32 serving; the served embeddings must be
//!   **bit-identical** to `ExecMode::Serial`.
//! * `quantized` — int8 serving: the model is calibrated on the warm-up
//!   split and quantized (`tgnn_core::quantized`), and the pipeline runs the
//!   packed int8 kernels.  The served embeddings must be bit-identical to
//!   `ExecMode::Quantized` replaying the same batches (the pipeline adds no
//!   numeric drift of its own), and their accuracy against the f32 serial
//!   reference (cosine / max-abs error) is measured and recorded.
//!
//! `--tenants N` (default 1) turns on the multi-tenant admission layer:
//! the measurement feed is split round-robin across `N` tenants with
//! skewed weights (`2^(N-1-i)`, so the last tenant has weight 1), each with
//! a small bounded ingress queue and the `--overload-policy`.  With
//! `--offered-load` above pipeline capacity this demonstrates the overload
//! contract: `block` backpressures and serves everything bit-identically,
//! the drop policies shed load while keeping per-tenant p99 bounded, and
//! the weighted-fair scheduler keeps every tenant near its weight share.
//! The per-tenant table (throughput, drop rate, late count, p99) is
//! printed and recorded in the JSON row.
//!
//! `--gnn-workers <n>` sizes the data-parallel GNN compute pool (default 1);
//! the identity check holds for every pool size and both exec modes, and
//! both are recorded in the `"pipeline"` row.  `--smoke` runs a tiny
//! fixed-seed configuration and skips the JSON merge — the CI step after
//! `perf_baseline`, failing (via the identity assertion) on any
//! pipelined-vs-engine divergence.

use std::sync::Arc;
use std::time::{Duration, Instant};
use tgnn_bench::{
    build_model, harness_model_config, merge_baseline_row, Dataset, FlagHelp, HarnessArgs,
};
use tgnn_core::quantized::quantize_model;
use tgnn_core::{ExecMode, InferenceEngine, OptimizationVariant, OverloadPolicy, TenantId};
use tgnn_graph::EventBatch;
use tgnn_quant::QuantConfig;
use tgnn_serve::{ServeConfig, ServeReport, ServedBatch, StreamServer, TenantSpec};
use tgnn_tensor::stats::{cosine_agreement, max_abs_diff};

const MAX_BATCH: usize = 200;
const NUM_SHARDS: usize = 4;

/// Embedding-accuracy floor of the quantized serve path vs the f32 serial
/// reference (worst pair over the whole stream).
const QUANT_COSINE_FLOOR: f32 = 0.999;

/// Binary-specific flags, enumerated for `--help` (keep in sync with the
/// parsing below — `usage_text_enumerates_shared_and_extra_flags` guards
/// the shared half).
const SERVE_FLAGS: &[FlagHelp] = &[
    (
        "--exec-mode",
        "<batched|quantized>",
        "numeric path: f32 (default) or calibrated int8",
    ),
    (
        "--gnn-workers",
        "<n>",
        "data-parallel GNN compute workers (default 1)",
    ),
    (
        "--tenants",
        "<n>",
        "tenants sharing the server, round-robin feed, skewed weights (default 1)",
    ),
    (
        "--overload-policy",
        "<p>",
        "block|drop-newest|drop-oldest|late at the ingress bound (default block)",
    ),
    (
        "--offered-load",
        "<eps>",
        "pace submission at this many events/sec (default 0 = unpaced)",
    ),
    (
        "--ingress-capacity",
        "<n>",
        "per-tenant ingress queue bound when --tenants > 1 (default 256)",
    ),
    (
        "--deadline-ms",
        "<ms>",
        "per-event deadline for the late policy (default 50)",
    ),
    (
        "--out",
        "<path>",
        "baseline JSON to merge the pipeline row into (default BENCH_baseline.json)",
    ),
    (
        "--smoke",
        "",
        "tiny fixed configuration, no JSON merge (CI identity check)",
    ),
];

fn main() {
    let mut args = HarnessArgs::parse_or_help(
        "serve_bench",
        "Streaming-pipeline benchmark: throughput/latency, pipelined-vs-engine identity, \
         and multi-tenant overload behaviour.",
        SERVE_FLAGS,
    );
    let argv: Vec<String> = std::env::args().collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    if smoke {
        args.scale = 0.005;
    }
    let flag_value = |name: &'static str| {
        argv.iter()
            .position(|a| a == name)
            .map(|i| argv.get(i + 1).cloned())
    };
    let out_path = flag_value("--out")
        .flatten()
        .unwrap_or_else(|| "BENCH_baseline.json".to_string());
    // Unlike the HarnessArgs flags, a missing or malformed value here is a
    // hard error: CI's identity checks must not silently degrade to the
    // default configuration.
    let parse_usize = |name: &'static str, default: usize| -> usize {
        match flag_value(name) {
            None => default,
            Some(v) => v
                .as_deref()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name}: expected a non-negative integer, got {v:?}")),
        }
    };
    let parse_f64 = |name: &'static str, default: f64| -> f64 {
        match flag_value(name) {
            None => default,
            Some(v) => v
                .as_deref()
                .and_then(|v| v.parse().ok())
                .filter(|x: &f64| x.is_finite() && *x >= 0.0)
                .unwrap_or_else(|| panic!("{name}: expected a non-negative number, got {v:?}")),
        }
    };
    let gnn_workers = parse_usize("--gnn-workers", 1);
    let num_tenants = parse_usize("--tenants", 1);
    let offered_load = parse_f64("--offered-load", 0.0);
    let ingress_capacity = parse_usize("--ingress-capacity", 256);
    let deadline_ms = parse_f64("--deadline-ms", 50.0);
    let policy: OverloadPolicy = match flag_value("--overload-policy") {
        None => OverloadPolicy::Block,
        Some(v) => v
            .as_deref()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                panic!("--overload-policy: expected block|drop-newest|drop-oldest|late")
            }),
    };
    let quantized: bool = match flag_value("--exec-mode") {
        None => false,
        Some(v) => match v.as_deref() {
            Some("batched") => false,
            Some("quantized") => true,
            other => panic!("--exec-mode: expected batched|quantized, got {other:?}"),
        },
    };
    assert!(num_tenants >= 1, "--tenants: need at least one tenant");
    // The tenancy flags configure the multi-tenant admission layer; with
    // the default single tenant they would be silently ignored, and a
    // baseline row recording a policy the run never used is worse than an
    // error.
    if num_tenants == 1 {
        for flag in ["--overload-policy", "--ingress-capacity", "--deadline-ms"] {
            assert!(
                flag_value(flag).is_none(),
                "{flag} requires --tenants > 1 (a single-tenant run always uses the Block policy)"
            );
        }
    }

    let graph = Arc::new(Dataset::Wikipedia.graph(args.scale, args.seed));
    let variant = OptimizationVariant::NpMedium;
    let cfg = harness_model_config(&graph, variant);
    let mut model = build_model(&graph, &cfg, args.seed);
    // Warm the vertex state on the train split, then measure on the events
    // after it — the served stream must stay chronological past the warm-up.
    let warm_events = graph.train_events().to_vec();
    let measure_events = graph.events()[graph.train_end()..].to_vec();
    let exec_mode = if quantized { "quantized" } else { "batched" };
    println!(
        "dataset: Wikipedia-like @ scale {} — {} nodes, {} events, variant {}, {} shards, {} gnn worker(s), exec-mode {}{}",
        args.scale,
        graph.num_nodes(),
        measure_events.len(),
        variant.label(),
        NUM_SHARDS,
        gnn_workers,
        exec_mode,
        if smoke { " (smoke)" } else { "" }
    );
    if num_tenants > 1 {
        println!(
            "admission: {num_tenants} tenants (weights 2^(N-1-i)), policy {}, ingress bound {ingress_capacity}, offered load {}",
            policy.label(),
            if offered_load > 0.0 {
                format!("{offered_load:.0} eps")
            } else {
                "unpaced".to_string()
            }
        );
    }

    // Quantized mode: calibrate on the warm-up split (replayed from cold
    // state by the calibration engine) and attach the int8 weight set —
    // the pipeline itself runs unchanged.
    let quant = quantized.then(|| {
        let q = Arc::new(quantize_model(
            &model,
            &graph,
            &[],
            &warm_events,
            MAX_BATCH,
            QuantConfig::default(),
        ));
        model.attach_quantized(q.clone());
        q
    });

    // --- Pipelined serving run.
    let tenants: Vec<TenantSpec> = (0..num_tenants)
        .map(|i| {
            TenantSpec::new(format!("tenant{i}"))
                .with_weight(1 << (num_tenants - 1 - i).min(16))
                .with_capacity(ingress_capacity)
                .with_policy(policy)
                .with_deadline(Duration::from_secs_f64(deadline_ms / 1e3))
        })
        .collect();
    let serve_config = ServeConfig {
        max_batch: MAX_BATCH,
        // Size-only sealing keeps the micro-batch boundaries deterministic
        // for the identity replay below.
        batch_deadline: Duration::from_secs(3600),
        num_shards: NUM_SHARDS,
        gnn_workers,
        // In multi-tenant mode the scheduler→batcher queue is a small
        // handoff buffer, NOT a reservoir: weighted-fair draining only
        // disciplines *admission* while the scheduler is blocked downstream
        // with tenant queues still full.  A queue deep enough to absorb the
        // combined ingress backlog would forward every queued event each
        // burst and flatten the service shares to uniform.
        admission_capacity: if num_tenants > 1 {
            8
        } else {
            ServeConfig::default().admission_capacity
        },
        tenants: if num_tenants > 1 { tenants } else { Vec::new() },
        ..ServeConfig::default()
    };
    // A paced multi-tenant run needs *sustained* pressure to demonstrate
    // fairness: replay the measurement feed for enough laps (timestamps
    // shifted by the feed's span each lap) to offer about one second of
    // load, so the scheduler arbitrates across many rounds instead of one
    // burst-then-drain.
    let laps: usize = if num_tenants > 1 && offered_load > 0.0 {
        ((offered_load / measure_events.len() as f64).ceil() as usize).clamp(1, 50)
    } else {
        1
    };
    if laps > 1 {
        println!(
            "admission: replaying the {}-event feed for {laps} laps of offered load",
            measure_events.len()
        );
    }
    let span = match (measure_events.first(), measure_events.last()) {
        (Some(a), Some(b)) => 1.0 + b.timestamp - a.timestamp,
        _ => 1.0,
    };
    let mut server = StreamServer::new(model.clone(), graph.clone(), serve_config);
    server.warm_up(&warm_events);
    let mut served: Vec<ServedBatch> = Vec::new();
    let mut submitted = 0u64;
    let mut dropped_at_submit = 0u64;
    let pace_start = Instant::now();
    for lap in 0..laps {
        for (i, &e) in measure_events.iter().enumerate() {
            if offered_load > 0.0 {
                // Pace the offered load: event k is due at k / offered_load.
                let due = pace_start + Duration::from_secs_f64(submitted as f64 / offered_load);
                if let Some(wait) = due.checked_duration_since(Instant::now()) {
                    std::thread::sleep(wait);
                }
            }
            let mut e = e;
            e.timestamp += lap as f64 * span;
            let tenant = TenantId(i as u32 % num_tenants as u32);
            let outcome = server.submit_for(tenant, e).expect("chronological stream");
            submitted += 1;
            if !outcome.is_admitted() {
                dropped_at_submit += 1;
            }
            while let Some(b) = server.poll() {
                served.push(b);
            }
        }
    }
    let report = server.drain();
    while let Some(b) = server.poll() {
        served.push(b);
    }
    println!(
        "pipeline: {:>10.0} edges/sec over {} micro-batches — latency mean {:.3} ms, p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms",
        report.throughput_eps,
        report.num_batches,
        report.latency.mean_ms,
        report.latency.p50_ms,
        report.latency.p95_ms,
        report.latency.p99_ms
    );
    if num_tenants > 1 {
        print_tenant_table(&report);
        check_overload_contract(
            &report,
            policy,
            submitted,
            dropped_at_submit,
            offered_load > 0.0,
        );
        // Cross-tenant scheduling reorders the merged stream, so the
        // shared-state chronology metric is reported, not asserted — it is
        // clean exactly when tenants touch disjoint vertex sets.
        println!(
            "chronology: commit log {} ({} commits)",
            if report.commit_log_clean {
                "clean"
            } else {
                "cross-tenant reordering observed"
            },
            report.commits
        );
    } else {
        assert!(report.commit_log_clean, "pipeline violated chronology");
    }

    // --- Identity check: the engine running the same numeric path must
    // reproduce the served embeddings bitwise over the served batch
    // sequence (batched → Serial f32; quantized → ExecMode::Quantized).
    // With drop policies the engine replays exactly the *served* events —
    // what was dropped at admission never entered the semantics.
    let mut engine = match &quant {
        None => InferenceEngine::new(model.clone(), graph.num_nodes()).with_mode(ExecMode::Serial),
        Some(q) => {
            let mut f32_model = model.clone();
            f32_model.detach_quantized();
            InferenceEngine::new(f32_model, graph.num_nodes()).with_quantized(q.clone())
        }
    };
    engine.warm_up(&warm_events, &graph);
    let mut checked_events = 0usize;
    for batch in &served {
        let reference = engine.process_batch(&EventBatch::new(batch.events.clone()), &graph);
        assert_eq!(
            reference.embeddings, batch.embeddings,
            "pipeline embeddings diverged bitwise from the {exec_mode} engine in epoch {}",
            batch.epoch
        );
        checked_events += batch.events.len();
    }
    let total_dropped: u64 = report.tenants.iter().map(|t| t.dropped()).sum();
    assert_eq!(
        checked_events as u64 + total_dropped,
        submitted,
        "events lost in flight (served {checked_events} + dropped {total_dropped})"
    );
    println!(
        "identity: {} embeddings across {} micro-batches bit-identical to the {} engine{}",
        report.num_embeddings,
        served.len(),
        if quantized {
            "ExecMode::Quantized"
        } else {
            "ExecMode::Serial"
        },
        if total_dropped > 0 {
            format!(" ({total_dropped} events shed at admission, accounted)")
        } else {
            String::new()
        }
    );

    // --- Quantized accuracy: served int8 embeddings vs the f32 serial
    // reference over the same micro-batch sequence.
    let accuracy = quantized.then(|| {
        let mut f32_model = model.clone();
        f32_model.detach_quantized();
        let mut serial =
            InferenceEngine::new(f32_model, graph.num_nodes()).with_mode(ExecMode::Serial);
        serial.warm_up(&warm_events, &graph);
        let mut worst_cos: f32 = 1.0;
        let mut cos_sum = 0.0f64;
        let mut count = 0usize;
        let mut max_err: f32 = 0.0;
        for batch in &served {
            let reference = serial.process_batch(&EventBatch::new(batch.events.clone()), &graph);
            for ((v_a, e_a), (v_b, e_b)) in reference.embeddings.iter().zip(&batch.embeddings) {
                assert_eq!(v_a, v_b, "vertex order diverged in accuracy replay");
                let cos = cosine_agreement(e_a, e_b);
                worst_cos = worst_cos.min(cos);
                cos_sum += cos as f64;
                count += 1;
                max_err = max_err.max(max_abs_diff(e_a, e_b));
            }
        }
        let mean_cos = cos_sum / count.max(1) as f64;
        println!(
            "accuracy: embedding cosine vs f32 serial — min {worst_cos:.6}, mean {mean_cos:.6}, max abs err {max_err:.5}"
        );
        assert!(
            worst_cos >= QUANT_COSINE_FLOOR,
            "quantized serve accuracy below the floor: cosine {worst_cos} < {QUANT_COSINE_FLOOR}"
        );
        (worst_cos, mean_cos, max_err)
    });

    if smoke {
        println!("smoke mode: skipping {out_path} update");
        return;
    }
    // Record the policy the run *actually* used (the report's, not the
    // flag's) so the row can never contradict its own tenant_stats.
    let effective_policy = report.tenants[0].policy;
    merge_pipeline_row(
        &out_path,
        &report,
        exec_mode,
        effective_policy,
        offered_load,
        accuracy,
    );
    println!("wrote pipeline row to {out_path}");
}

/// Prints the per-tenant serving table (the overload picture).
fn print_tenant_table(report: &ServeReport) {
    println!("tenant      weight  submitted  served   dropped  drop%   late    p99 ms    eps");
    for t in &report.tenants {
        println!(
            "{:<10} {:>6} {:>10} {:>7} {:>9} {:>6.1} {:>6} {:>9.2} {:>8.0}",
            t.name,
            t.weight,
            t.counters.submitted,
            t.served,
            t.dropped(),
            t.drop_rate() * 100.0,
            t.late,
            t.latency.p99_ms,
            t.throughput_eps,
        );
    }
}

/// Asserts the multi-tenant overload contract the run demonstrates: every
/// event accounted, policy-consistent drop counters, and — when the run
/// was actually overloaded — weighted-fair service within 2× of each
/// tenant's weight share.
fn check_overload_contract(
    report: &ServeReport,
    policy: OverloadPolicy,
    submitted: u64,
    dropped_at_submit: u64,
    paced: bool,
) {
    let total_served: u64 = report.tenants.iter().map(|t| t.served).sum();
    let total_dropped: u64 = report.tenants.iter().map(|t| t.dropped()).sum();
    assert_eq!(
        total_served + total_dropped,
        submitted,
        "per-tenant accounting must cover every submitted event"
    );
    match policy {
        OverloadPolicy::Block | OverloadPolicy::Late => {
            assert_eq!(total_dropped, 0, "{} must never drop", policy.label());
        }
        OverloadPolicy::DropNewest => {
            assert_eq!(
                total_dropped, dropped_at_submit,
                "DropNewest drops are exactly the rejected submits"
            );
        }
        OverloadPolicy::DropOldest => {
            assert_eq!(dropped_at_submit, 0, "DropOldest always admits");
        }
    }
    // Fairness is only observable while the scheduler actually arbitrates:
    // the run must be paced (an unpaced burst is admitted almost entirely
    // before the pipeline serves its first batch, so service degenerates to
    // drain order) and heavily shedding.
    if paced && total_dropped > submitted / 10 {
        let total_weight: u64 = report.tenants.iter().map(|t| u64::from(t.weight)).sum();
        for t in &report.tenants {
            let fair = total_served as f64 * t.weight as f64 / total_weight as f64;
            assert!(
                (t.served as f64) >= fair / 2.0 && (t.served as f64) <= fair * 2.0,
                "tenant {} (weight {}): served {} vs fair share {:.1} — outside 2×",
                t.name,
                t.weight,
                t.served,
                fair
            );
        }
        println!("fairness: every tenant within 2x of its weight share (asserted)");
    }
}

/// Formats and merges the top-level `"pipeline"` row.
fn merge_pipeline_row(
    path: &str,
    report: &ServeReport,
    exec_mode: &str,
    policy: OverloadPolicy,
    offered_load: f64,
    accuracy: Option<(f32, f64, f32)>,
) {
    let identity = match accuracy {
        None => "    \"embeddings_bitwise_identical_to_serial\": true".to_string(),
        Some((min_cos, mean_cos, max_err)) => format!(
            "    \"embeddings_bitwise_identical_to_quantized_engine\": true,\n    \"embedding_cosine_min\": {min_cos:.6},\n    \"embedding_cosine_mean\": {mean_cos:.6},\n    \"embedding_max_abs_err\": {max_err:.6}"
        ),
    };
    let tenant_rows: Vec<String> = report
        .tenants
        .iter()
        .map(|t| {
            format!(
                "      {{ \"name\": \"{}\", \"weight\": {}, \"policy\": \"{}\", \"submitted\": {}, \"served\": {}, \"dropped\": {}, \"drop_rate\": {:.4}, \"late\": {}, \"p99_ms\": {:.4}, \"events_per_sec\": {:.1} }}",
                t.name,
                t.weight,
                t.policy.label(),
                t.counters.submitted,
                t.served,
                t.dropped(),
                t.drop_rate(),
                t.late,
                t.latency.p99_ms,
                t.throughput_eps,
            )
        })
        .collect();
    let row = format!(
        "{{\n    \"events_per_sec\": {:.1},\n    \"num_batches\": {},\n    \"max_batch\": {},\n    \"num_shards\": {},\n    \"gnn_workers\": {},\n    \"exec_mode\": \"{}\",\n    \"latency_ms\": {{ \"mean\": {:.4}, \"p50\": {:.4}, \"p95\": {:.4}, \"p99\": {:.4} }},\n    \"backpressure_blocks\": {},\n    \"tenants\": {},\n    \"overload_policy\": \"{}\",\n    \"offered_load_eps\": {:.1},\n    \"commit_log_clean\": {},\n    \"tenant_stats\": [\n{}\n    ],\n{}\n  }}",
        report.throughput_eps,
        report.num_batches,
        MAX_BATCH,
        report.num_shards,
        report.gnn_workers,
        exec_mode,
        report.latency.mean_ms,
        report.latency.p50_ms,
        report.latency.p95_ms,
        report.latency.p99_ms,
        report.backpressure_blocks,
        report.tenants.len(),
        policy.label(),
        offered_load,
        report.commit_log_clean,
        tenant_rows.join(",\n"),
        identity,
    );
    merge_baseline_row(path, "pipeline", &row);
}
