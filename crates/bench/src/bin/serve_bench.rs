//! Streaming-pipeline throughput/latency benchmark, identity check, and
//! multi-tenant overload demonstration.
//!
//! Streams the Wikipedia-like preset through the pipelined `StreamServer`,
//! verifies the served embeddings against a reference engine replaying the
//! exact micro-batch sequence the server used, and extends
//! `BENCH_baseline.json` (written by `perf_baseline`) with a `"pipeline"`
//! row: events/sec, mean/p50/p95/p99 micro-batch latency, and per-tenant
//! admission statistics.
//!
//! Run with: `cargo run --release -p tgnn-bench --bin serve_bench -- --scale 0.02`
//! (see `--help` or `crates/bench/README.md` for every flag).
//!
//! `--exec-mode {batched,quantized}` selects the numeric path:
//!
//! * `batched` (default) — f32 serving; the served embeddings must be
//!   **bit-identical** to `ExecMode::Serial`.
//! * `quantized` — int8 serving: the model is calibrated on the warm-up
//!   split and quantized (`tgnn_core::quantized`), and the pipeline runs the
//!   packed int8 kernels.  The served embeddings must be bit-identical to
//!   `ExecMode::Quantized` replaying the same batches (the pipeline adds no
//!   numeric drift of its own), and their accuracy against the f32 serial
//!   reference (cosine / max-abs error) is measured and recorded.
//!
//! `--tenants N` (default 1) turns on the multi-tenant admission layer:
//! the measurement feed is split round-robin across `N` tenants with
//! skewed weights (`2^(N-1-i)`, so the last tenant has weight 1), each with
//! a small bounded ingress queue and the `--overload-policy`.  With
//! `--offered-load` above pipeline capacity this demonstrates the overload
//! contract: `block` backpressures and serves everything bit-identically,
//! the drop policies shed load while keeping per-tenant p99 bounded, and
//! the weighted-fair scheduler keeps every tenant near its weight share.
//! The per-tenant table (throughput, drop rate, late count, p99) is
//! printed and recorded in the JSON row.
//!
//! `--gnn-workers <n>` sizes the data-parallel GNN compute pool (default 1);
//! the identity check holds for every pool size and both exec modes, and
//! both are recorded in the `"pipeline"` row.  `--smoke` runs a tiny
//! fixed-seed configuration and skips the JSON merge — the CI step after
//! `perf_baseline`, failing (via the identity assertion) on any
//! pipelined-vs-engine divergence.
//!
//! `--durability <dir>` turns on the WAL + snapshot subsystem
//! (`crates/durable`): every admitted event and sealed batch is logged
//! before it is served, sharded state is snapshotted every
//! `--snapshot-every` committed epochs, and the `--fsync` policy picks the
//! durability/throughput point.  If `<dir>` already holds a WAL the run
//! *recovers* instead of starting fresh — latest usable snapshot, WAL
//! replay, sealed-but-unacked epochs re-served — and resumes the feed from
//! the durable submit index.  `--crash-at <n>` aborts the process (no
//! flush, no unwinding — the in-process stand-in for `kill -9`) right
//! before the n-th streamed seal; running the same command again without
//! the flag is the CI crash-recovery drill.  Durable runs also measure the
//! throughput overhead against a durability-off reference pass and record
//! it, with the WAL/snapshot/recovery counters, in the row's
//! `"durability"` section.
//!
//! `--scenario {uniform,powerlaw,flash-crowd,diurnal,fraud-burst}` switches
//! to the traffic-scenario harness (`tgnn_bench::scenarios`): the
//! measurement feed is resampled into the named popularity shape and driven
//! through a single-tenant server with the bounded-staleness embedding
//! cache enabled, in two phases — a polled warm phase that populates the
//! cache, then an unpolled burst that deterministically fills every queue
//! so the overload policy (default `serve-stale`) actually fires.  Every
//! stale answer is verified bit-identical to the embedding originally
//! served for its `(vertex, epoch)` and within the staleness bound; a
//! DropNewest pass over the identical feed shows `serve-stale` strictly
//! lowers the drop rate; and the `"pipeline"` row gains a `"scenario"`
//! section with the per-scenario cache hit rate and stale-age percentiles.
//!
//! Observability (`crates/serve::metrics`, on by default): after the drain
//! the bench prints the Table-I-shaped per-stage busy breakdown from the
//! span instrumentation, and the row gains a `"metrics"` section.
//! `--metrics-out <path>` samples the live `MetricsSnapshot` to a JSONL
//! file every `--metrics-interval-ms` (default 250) during the run;
//! `--metrics-overhead` measures metrics-on vs metrics-off throughput
//! (best of two ~20k-event windows each, budget 2%); `--no-metrics` turns
//! the whole subsystem off.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tgnn_bench::scenarios::{self, Scenario};
use tgnn_bench::{
    build_model, harness_model_config, merge_baseline_row, Dataset, FlagHelp, HarnessArgs,
};
use tgnn_core::profiling::Stage;
use tgnn_core::quantized::quantize_model;
use tgnn_core::{
    ExecMode, InferenceEngine, OptimizationVariant, OverloadPolicy, TenantId, TgnModel,
};
use tgnn_graph::{EventBatch, InteractionEvent, TemporalGraph};
use tgnn_quant::QuantConfig;
use tgnn_serve::{
    wal_fault_hook, BackendKind, BurnState, CacheConfig, CriticalPath, Disposition,
    DurabilityConfig, FsyncPolicy, MetricsSnapshot, RecoveryReport, SegmentId, ServeConfig,
    ServeReport, ServedBatch, SloConfig, StreamServer, SubmitOutcome, TenantSpec, TraceView,
};
use tgnn_tensor::stats::{cosine_agreement, max_abs_diff};
use tgnn_tensor::Float;

const MAX_BATCH: usize = 200;
const NUM_SHARDS: usize = 4;

/// Embedding-accuracy floor of the quantized serve path vs the f32 serial
/// reference (worst pair over the whole stream).
const QUANT_COSINE_FLOOR: f32 = 0.999;

/// Binary-specific flags, enumerated for `--help` (keep in sync with the
/// parsing below — `usage_text_enumerates_shared_and_extra_flags` guards
/// the shared half).
const SERVE_FLAGS: &[FlagHelp] = &[
    (
        "--exec-mode",
        "<batched|quantized>",
        "numeric path: f32 (default) or calibrated int8",
    ),
    (
        "--gnn-workers",
        "<n>",
        "data-parallel GNN compute workers (default 1)",
    ),
    (
        "--tenants",
        "<n>",
        "tenants sharing the server, round-robin feed, skewed weights (default 1)",
    ),
    (
        "--overload-policy",
        "<p>",
        "block|drop-newest|drop-oldest|late|serve-stale at the ingress bound (default block; serve-stale with --scenario)",
    ),
    (
        "--backends",
        "<k1,k2,..>",
        "per-tenant compute backends (f32|int8|hwsim), one per tenant in order — heterogeneous routing with a per-backend identity check; conflicts with --exec-mode",
    ),
    (
        "--scenario",
        "<shape>",
        "traffic-scenario harness: uniform|powerlaw|flash-crowd|diurnal|fraud-burst (single tenant, cache on, warm+burst phases)",
    ),
    (
        "--offered-load",
        "<eps>",
        "pace submission at this many events/sec (default 0 = unpaced)",
    ),
    (
        "--ingress-capacity",
        "<n>",
        "per-tenant ingress queue bound when --tenants > 1 (default 256)",
    ),
    (
        "--deadline-ms",
        "<ms>",
        "per-event deadline for the late policy (default 50)",
    ),
    (
        "--durability",
        "<dir>",
        "enable the WAL + snapshot subsystem rooted at <dir>; if <dir> already holds a WAL the run recovers and resumes it",
    ),
    (
        "--snapshot-every",
        "<n>",
        "snapshot interval in committed epochs with --durability (default 256)",
    ),
    (
        "--fsync",
        "<always|onseal|never>",
        "WAL fsync policy with --durability (default onseal)",
    ),
    (
        "--crash-at",
        "<n>",
        "abort the process before the n-th streamed batch seal (crash-recovery drill; requires --durability)",
    ),
    (
        "--no-metrics",
        "",
        "disable pipeline metrics/span recording (the off side of the overhead comparison)",
    ),
    (
        "--metrics-out",
        "<path>",
        "append periodic MetricsSnapshot JSONL samples to <path> during the run",
    ),
    (
        "--metrics-interval-ms",
        "<ms>",
        "sampling interval for --metrics-out (default 250)",
    ),
    (
        "--metrics-overhead",
        "",
        "measure metrics-on vs metrics-off throughput and print the overhead",
    ),
    (
        "--trace-out",
        "<path>",
        "write the post-drain causal-trace dump as JSONL to <path>, print the critical-path blame table, and assert segment-sum conservation",
    ),
    (
        "--out",
        "<path>",
        "baseline JSON to merge the pipeline row into (default BENCH_baseline.json)",
    ),
    (
        "--smoke",
        "",
        "tiny fixed configuration, no JSON merge (CI identity check)",
    ),
];

fn main() {
    let mut args = HarnessArgs::parse_or_help(
        "serve_bench",
        "Streaming-pipeline benchmark: throughput/latency, pipelined-vs-engine identity, \
         and multi-tenant overload behaviour.",
        SERVE_FLAGS,
    );
    let argv: Vec<String> = std::env::args().collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    if smoke {
        args.scale = 0.005;
    }
    let flag_value = |name: &'static str| {
        argv.iter()
            .position(|a| a == name)
            .map(|i| argv.get(i + 1).cloned())
    };
    let out_path = flag_value("--out")
        .flatten()
        .unwrap_or_else(|| "BENCH_baseline.json".to_string());
    // Unlike the HarnessArgs flags, a missing or malformed value here is a
    // hard error: CI's identity checks must not silently degrade to the
    // default configuration.
    let parse_usize = |name: &'static str, default: usize| -> usize {
        match flag_value(name) {
            None => default,
            Some(v) => v
                .as_deref()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name}: expected a non-negative integer, got {v:?}")),
        }
    };
    let parse_f64 = |name: &'static str, default: f64| -> f64 {
        match flag_value(name) {
            None => default,
            Some(v) => v
                .as_deref()
                .and_then(|v| v.parse().ok())
                .filter(|x: &f64| x.is_finite() && *x >= 0.0)
                .unwrap_or_else(|| panic!("{name}: expected a non-negative number, got {v:?}")),
        }
    };
    let gnn_workers = parse_usize("--gnn-workers", 1);
    let num_tenants = parse_usize("--tenants", 1);
    let offered_load = parse_f64("--offered-load", 0.0);
    let ingress_capacity = parse_usize("--ingress-capacity", 256);
    let deadline_ms = parse_f64("--deadline-ms", 50.0);
    let policy: OverloadPolicy = match flag_value("--overload-policy") {
        None => OverloadPolicy::Block,
        Some(v) => v
            .as_deref()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                panic!("--overload-policy: expected block|drop-newest|drop-oldest|late|serve-stale")
            }),
    };
    let scenario: Option<Scenario> = flag_value("--scenario").map(|v| {
        v.as_deref().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            panic!("--scenario: expected uniform|powerlaw|flash-crowd|diurnal|fraud-burst, got {v:?}")
        })
    });
    let quantized: bool = match flag_value("--exec-mode") {
        None => false,
        Some(v) => match v.as_deref() {
            Some("batched") => false,
            Some("quantized") => true,
            other => panic!("--exec-mode: expected batched|quantized, got {other:?}"),
        },
    };
    let backends: Option<Vec<BackendKind>> = flag_value("--backends").map(|v| {
        let v = v.unwrap_or_else(|| {
            panic!("--backends: expected a comma-separated list of f32|int8|hwsim")
        });
        v.split(',')
            .map(|k| {
                k.trim().parse().unwrap_or_else(|_| {
                    panic!("--backends: expected f32|int8|hwsim per tenant, got {k:?}")
                })
            })
            .collect()
    });
    let durability_dir = flag_value("--durability").flatten();
    let snapshot_every = parse_usize("--snapshot-every", 256) as u64;
    let fsync: FsyncPolicy = match flag_value("--fsync") {
        None => FsyncPolicy::OnSeal,
        Some(v) => v
            .as_deref()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("--fsync: expected always|onseal|never, got {v:?}")),
    };
    let crash_at: Option<u64> = flag_value("--crash-at").map(|v| {
        v.as_deref()
            .and_then(|v| v.parse().ok())
            .filter(|n| *n >= 1)
            .unwrap_or_else(|| panic!("--crash-at: expected a positive seal number, got {v:?}"))
    });
    let no_metrics = flag_value("--no-metrics").is_some();
    let metrics_overhead_wanted = flag_value("--metrics-overhead").is_some();
    let metrics_out = flag_value("--metrics-out").flatten();
    let metrics_interval_ms = parse_f64("--metrics-interval-ms", 250.0);
    let trace_out = flag_value("--trace-out").flatten();
    assert!(
        metrics_out.is_some() || flag_value("--metrics-interval-ms").is_none(),
        "--metrics-interval-ms requires --metrics-out <path>"
    );
    if no_metrics {
        assert!(
            metrics_out.is_none() && !metrics_overhead_wanted && trace_out.is_none(),
            "--no-metrics conflicts with --metrics-out / --metrics-overhead / --trace-out"
        );
    }
    assert!(num_tenants >= 1, "--tenants: need at least one tenant");
    if let Some(kinds) = &backends {
        assert_eq!(
            kinds.len(),
            num_tenants,
            "--backends: need exactly one backend per tenant (got {} for --tenants {num_tenants})",
            kinds.len()
        );
        assert!(
            flag_value("--exec-mode").is_none(),
            "--backends selects the numeric path per tenant; drop --exec-mode"
        );
        assert!(
            scenario.is_none(),
            "--backends conflicts with --scenario (the scenario harness studies the f32 cache path)"
        );
        assert!(
            durability_dir.is_none(),
            "--backends conflicts with --durability (the bench's feed-resumption replay is single-backend)"
        );
    }
    if durability_dir.is_none() {
        for flag in ["--snapshot-every", "--fsync", "--crash-at"] {
            assert!(
                flag_value(flag).is_none(),
                "{flag} requires --durability <dir>"
            );
        }
    }
    // Crash/recovery drills resume the measurement feed from the durable
    // submit-outcome index, which only maps back onto the feed for the
    // simple single-tenant unpaced run.
    let recover_mode = durability_dir
        .as_deref()
        .is_some_and(|d| wal_present(std::path::Path::new(d)));
    if crash_at.is_some() || recover_mode {
        assert_eq!(
            num_tenants, 1,
            "--crash-at / recovery need a single tenant (feed resumption)"
        );
        assert_eq!(
            offered_load, 0.0,
            "--crash-at / recovery need an unpaced feed"
        );
    }
    // The tenancy flags configure the multi-tenant admission layer; with
    // the default single tenant they would be silently ignored, and a
    // baseline row recording a policy the run never used is worse than an
    // error.  The scenario harness is the exception: it runs one explicit
    // tenant whose overload policy is the object of study.
    if num_tenants == 1 && scenario.is_none() {
        for flag in ["--overload-policy", "--ingress-capacity", "--deadline-ms"] {
            assert!(
                flag_value(flag).is_none(),
                "{flag} requires --tenants > 1 or --scenario (a plain single-tenant run always uses the Block policy)"
            );
        }
    }
    // Scenario mode drives its own single-tenant warm/burst submission
    // schedule; the burst phase never polls, so admit-always policies
    // (block / late) would deadlock against a full results queue, and the
    // feed-resumption / pacing / quantized machinery doesn't apply.
    let policy = if scenario.is_some() && flag_value("--overload-policy").is_none() {
        OverloadPolicy::ServeStale
    } else {
        policy
    };
    if scenario.is_some() {
        assert_eq!(num_tenants, 1, "--scenario runs a single explicit tenant");
        assert!(
            !matches!(policy, OverloadPolicy::Block | OverloadPolicy::Late),
            "--scenario needs a shedding policy (serve-stale, drop-newest, or drop-oldest): \
             the unpolled burst phase would deadlock an admit-always policy"
        );
        assert!(!quantized, "--scenario measures the f32 cache path");
        for flag in [
            "--durability",
            "--crash-at",
            "--offered-load",
            "--metrics-out",
            "--metrics-overhead",
            "--trace-out",
        ] {
            assert!(
                flag_value(flag).is_none(),
                "{flag} conflicts with --scenario"
            );
        }
    }

    // Smoke keeps the tiny feed but shrinks the micro-batch so the run still
    // spans several epochs — the crash-recovery drill in CI needs durable
    // seals *before* the crash point.
    let max_batch = if smoke { 40 } else { MAX_BATCH };

    let graph = Arc::new(Dataset::Wikipedia.graph(args.scale, args.seed));
    let variant = OptimizationVariant::NpMedium;
    let cfg = harness_model_config(&graph, variant);
    let mut model = build_model(&graph, &cfg, args.seed);
    // Warm the vertex state on the train split, then measure on the events
    // after it — the served stream must stay chronological past the warm-up.
    let warm_events = graph.train_events().to_vec();
    let measure_events = graph.events()[graph.train_end()..].to_vec();
    let exec_mode = if backends.is_some() {
        "heterogeneous"
    } else if quantized {
        "quantized"
    } else {
        "batched"
    };
    println!(
        "dataset: Wikipedia-like @ scale {} — {} nodes, {} events, variant {}, {} shards, {} gnn worker(s), exec-mode {}{}",
        args.scale,
        graph.num_nodes(),
        measure_events.len(),
        variant.label(),
        NUM_SHARDS,
        gnn_workers,
        exec_mode,
        if smoke { " (smoke)" } else { "" }
    );
    if num_tenants > 1 {
        println!(
            "admission: {num_tenants} tenants (weights 2^(N-1-i)), policy {}, ingress bound {ingress_capacity}, offered load {}",
            policy.label(),
            if offered_load > 0.0 {
                format!("{offered_load:.0} eps")
            } else {
                "unpaced".to_string()
            }
        );
    }
    if let Some(kinds) = &backends {
        println!(
            "backends: per-tenant heterogeneous routing [{}]",
            kinds
                .iter()
                .map(|k| k.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }

    if let Some(shape) = scenario {
        run_scenario(ScenarioRun {
            shape,
            model,
            graph,
            warm_events: &warm_events,
            measure_events: &measure_events,
            policy,
            ingress_capacity,
            deadline_ms,
            max_batch,
            gnn_workers,
            seed: args.seed,
            smoke,
            no_metrics,
            out_path: &out_path,
        });
        return;
    }

    // Quantized mode: calibrate on the warm-up split (replayed from cold
    // state by the calibration engine) and attach the int8 weight set —
    // the pipeline itself runs unchanged.  A heterogeneous run with an int8
    // tenant also attaches one, but keeps the GRU in f32: the router's
    // shared memory stage runs on the detached f32 stage model, so the
    // per-backend identity replay is only bitwise when the reference
    // engine's memory path is f32 too.
    let needs_int8 = backends
        .as_ref()
        .is_some_and(|ks| ks.contains(&BackendKind::Int8));
    let quant = (quantized || needs_int8).then(|| {
        let quant_config = if needs_int8 {
            QuantConfig {
                quantize_gru: false,
                ..QuantConfig::default()
            }
        } else {
            QuantConfig::default()
        };
        let q = Arc::new(quantize_model(
            &model,
            &graph,
            &[],
            &warm_events,
            max_batch,
            quant_config,
        ));
        model.attach_quantized(q.clone());
        q
    });

    // --- Pipelined serving run.
    let tenants: Vec<TenantSpec> = (0..num_tenants)
        .map(|i| {
            let spec = TenantSpec::new(format!("tenant{i}"))
                .with_weight(1 << (num_tenants - 1 - i).min(16))
                .with_capacity(ingress_capacity)
                .with_policy(policy)
                .with_deadline(Duration::from_secs_f64(deadline_ms / 1e3));
            match &backends {
                Some(kinds) => spec.with_backend(kinds[i]),
                None => spec,
            }
        })
        .collect();
    // A paced multi-tenant run needs *sustained* pressure to demonstrate
    // fairness: replay the measurement feed for enough laps (timestamps
    // shifted by the feed's span each lap) to offer about one second of
    // load, so the scheduler arbitrates across many rounds instead of one
    // burst-then-drain.
    let laps: usize = if num_tenants > 1 && offered_load > 0.0 {
        ((offered_load / measure_events.len() as f64).ceil() as usize).clamp(1, 50)
    } else if durability_dir.is_some()
        && !smoke
        && !recover_mode
        && crash_at.is_none()
        && num_tenants == 1
        && offered_load == 0.0
    {
        // The durability-overhead comparison divides two wall-clock windows;
        // at bench scale a single pass over the feed is ~10 ms, where
        // scheduler jitter alone swamps a 15% budget.  Replay to ~20k
        // events (the reference pass mirrors the laps) so the window
        // measures the pipeline, not the host.
        (20_000 / measure_events.len().max(1)).clamp(1, 50)
    } else {
        1
    };
    // The WAL + snapshot subsystem.  A crash drill counts *streamed* seals
    // (warm-up epochs never reach the batcher) and aborts the process before
    // the n-th one hits the log — the closest in-process stand-in for
    // `kill -9`: no flush, no Drop, buffered WAL bytes genuinely lost.
    let durability = durability_dir.as_ref().map(|dir| {
        let mut c = DurabilityConfig::new(dir)
            .with_snapshot_every(snapshot_every)
            .with_fsync(fsync);
        if let Some(at) = crash_at {
            let seals = AtomicU64::new(0);
            c = c.with_wal_fault(wal_fault_hook(move |_epoch| {
                if seals.fetch_add(1, Ordering::SeqCst) + 1 == at {
                    eprintln!("crash drill: aborting before streamed seal #{at}");
                    std::process::abort();
                }
                false
            }));
        }
        c
    });
    let serve_config = ServeConfig {
        max_batch,
        // Size-only sealing keeps the micro-batch boundaries deterministic
        // for the identity replay below.
        batch_deadline: Duration::from_secs(3600),
        num_shards: NUM_SHARDS,
        gnn_workers,
        durability,
        // A crash drill must not poll (delivered results would be acked and
        // skipped on recovery, leaving the identity replay without their
        // state transitions), so the results queue has to hold the whole
        // feed's batches.
        results_capacity: if crash_at.is_some() {
            (laps * measure_events.len() / max_batch + 8).max(256)
        } else {
            ServeConfig::default().results_capacity
        },
        // In multi-tenant mode the scheduler→batcher queue is a small
        // handoff buffer, NOT a reservoir: weighted-fair draining only
        // disciplines *admission* while the scheduler is blocked downstream
        // with tenant queues still full.  A queue deep enough to absorb the
        // combined ingress backlog would forward every queued event each
        // burst and flatten the service shares to uniform.
        admission_capacity: if num_tenants > 1 {
            8
        } else {
            ServeConfig::default().admission_capacity
        },
        tenants: if num_tenants > 1 || backends.is_some() {
            tenants
        } else {
            Vec::new()
        },
        metrics: !no_metrics,
        // Declared objectives (status only — the pre-emptive ServeStale hook
        // stays off outside the scenario harness) so the run records burn
        // rates alongside its latency percentiles.
        slo: (!no_metrics).then(SloConfig::default),
        ..ServeConfig::default()
    };
    if laps > 1 {
        println!(
            "{}: replaying the {}-event feed for {laps} laps{}",
            if num_tenants > 1 {
                "admission"
            } else {
                "durability"
            },
            measure_events.len(),
            if num_tenants > 1 {
                " of offered load"
            } else {
                " (overhead measurement window)"
            }
        );
    }
    let span = match (measure_events.first(), measure_events.last()) {
        (Some(a), Some(b)) => 1.0 + b.timestamp - a.timestamp,
        _ => 1.0,
    };
    let mut served: Vec<ServedBatch> = Vec::new();
    let (mut server, recovery): (StreamServer, Option<RecoveryReport>) = if recover_mode {
        let dir = durability_dir.as_deref().unwrap();
        let (server, rep) = StreamServer::recover(model.clone(), graph.clone(), serve_config)
            .unwrap_or_else(|e| panic!("recovery from {dir} failed: {e}"));
        println!(
            "recovery: snapshot epoch {}, {} sealed epoch(s) in the WAL, {} replayed ({} events), {} re-served, {} readmitted, torn tail {}, {:.2} ms",
            rep.snapshot_epoch,
            rep.sealed_epochs,
            rep.replayed_epochs,
            rep.replayed_events,
            rep.re_served_epochs,
            rep.readmitted_events,
            if rep.torn_tail_repaired { "repaired" } else { "clean" },
            rep.recovery_ms
        );
        (server, Some(rep))
    } else {
        let mut server = StreamServer::new(model.clone(), graph.clone(), serve_config);
        server.warm_up(&warm_events);
        (server, None)
    };
    // Periodic JSONL sampling: a background thread appends one
    // MetricsSnapshot line per interval while the feed runs; stopping the
    // logger after the drain lands a final post-drain line.
    let metrics_logger = metrics_out.as_ref().map(|path| {
        server
            .metrics_hub()
            .spawn_jsonl_sampler(
                std::path::Path::new(path),
                Duration::from_secs_f64(metrics_interval_ms / 1e3),
            )
            .unwrap_or_else(|e| panic!("--metrics-out {path}: {e}"))
    });
    // The durable submit-outcome index: the crashed run consumed the feed up
    // to here, so this life resumes from it (the warm-up state and every
    // durable epoch were restored above).
    let resume = recovery.as_ref().map_or(0, |r| r.resume_from[0] as usize);
    assert!(
        resume <= measure_events.len(),
        "durable resume index {resume} exceeds the measurement feed — was the \
         directory produced by a different configuration?"
    );
    if recover_mode {
        // Sealed-but-unacked epochs come back first.
        while let Some(b) = server.poll() {
            served.push(b);
        }
    }
    // Events the recovery hands back through `served`: with a zero ack
    // watermark (the crash drill — it never polls) *every* durable event
    // returns, as re-served sealed epochs or the readmitted ingress tail;
    // after a clean drain nothing does (all state, all delivered).  A
    // partially-delivered source run would need the acked epochs' event
    // count, which the report deliberately doesn't carry — the bench
    // refuses rather than fudge its accounting.
    let recovered_events: u64 = match recovery.as_ref() {
        None => 0,
        Some(r) if r.acked == 0 => r.resume_from[0],
        Some(r) if r.re_served_epochs == 0 && r.readmitted_events == 0 => 0,
        Some(r) => panic!(
            "recovery source was partially delivered (acked epoch {}, {} re-served, {} \
             readmitted) — the bench only drills crash (never-acked) and clean-drain \
             directories",
            r.acked, r.re_served_epochs, r.readmitted_events
        ),
    };
    let mut submitted = 0u64;
    let mut dropped_at_submit = 0u64;
    let mut stale_at_submit = 0u64;
    let pace_start = Instant::now();
    for lap in 0..laps {
        let skip = if lap == 0 { resume } else { 0 };
        for (i, &e) in measure_events.iter().enumerate().skip(skip) {
            if offered_load > 0.0 {
                // Pace the offered load: event k is due at k / offered_load.
                let due = pace_start + Duration::from_secs_f64(submitted as f64 / offered_load);
                if let Some(wait) = due.checked_duration_since(Instant::now()) {
                    std::thread::sleep(wait);
                }
            }
            let mut e = e;
            e.timestamp += lap as f64 * span;
            let tenant = TenantId(i as u32 % num_tenants as u32);
            let outcome = server.submit_for(tenant, e).expect("chronological stream");
            submitted += 1;
            match outcome {
                SubmitOutcome::Admitted => {}
                SubmitOutcome::Dropped => dropped_at_submit += 1,
                // Answered from the embedding cache: not in the pipeline,
                // but a stale result is already queued — served, not lost.
                SubmitOutcome::ServedStale => stale_at_submit += 1,
            }
            // See `results_capacity` above: a crash drill leaves everything
            // unacked so recovery re-serves the full stream.
            if crash_at.is_none() {
                while let Some(b) = server.poll() {
                    served.push(b);
                }
            }
        }
    }
    let report = server.drain();
    while let Some(b) = server.poll() {
        served.push(b);
    }
    if let Some(logger) = metrics_logger {
        logger.stop();
        println!(
            "metrics: JSONL samples appended to {} every {metrics_interval_ms:.0} ms",
            metrics_out.as_deref().unwrap()
        );
    }
    println!(
        "pipeline: {:>10.0} edges/sec over {} micro-batches — latency mean {:.3} ms, p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms",
        report.throughput_eps,
        report.num_batches,
        report.latency.mean_ms,
        report.latency.p50_ms,
        report.latency.p95_ms,
        report.latency.p99_ms
    );
    // One greppable line per active backend (CI's heterogeneous smoke gate
    // parses the served counts; the modeled tail appears for hwsim only).
    for b in &report.backends {
        println!(
            "backend {}: served {} batches / {} events{}",
            b.kind,
            b.served_batches,
            b.served_events,
            b.modeled_latency.as_ref().map_or(String::new(), |m| {
                format!(
                    " — modeled latency p50 {:.3} ms, p99 {:.3} ms, max {:.3} ms",
                    m.p50_ms, m.p99_ms, m.max_ms
                )
            })
        );
    }
    if let Some(kinds) = &backends {
        for kind in kinds {
            let row = report.backends.iter().find(|b| b.kind == *kind);
            assert!(
                row.is_some_and(|b| b.served_events > 0),
                "declared backend {kind} never served an event"
            );
        }
    }
    // The Table-I-shaped breakdown: worker busy time per logical stage, as
    // accumulated by the span instrumentation (GNN is summed across pool
    // workers, so the fractions describe work, not wall-clock).
    if !no_metrics && !report.stage_timings.total().is_zero() {
        let t = &report.stage_timings;
        let cells: Vec<String> = Stage::all()
            .iter()
            .map(|&s| {
                format!(
                    "{} {:.1} ms ({:.0}%)",
                    s.label(),
                    t.get(s).as_secs_f64() * 1e3,
                    t.fraction(s) * 100.0
                )
            })
            .collect();
        println!("stages: {}", cells.join(", "));
    }
    // The post-drain snapshot: SLO burn-rate verdicts and causal-trace
    // counters, plus the optional --trace-out dump.
    let snapshot = (!no_metrics).then(|| server.metrics());
    if let Some(m) = &snapshot {
        for s in &m.slo {
            println!(
                "slo: {} budget {:.3} burn fast {} / slow {} — {}",
                s.name,
                s.error_budget,
                s.fast_burn
                    .map_or("n/a".to_string(), |b| format!("{b:.2}x")),
                s.slow_burn
                    .map_or("n/a".to_string(), |b| format!("{b:.2}x")),
                burn_state_label(s.state),
            );
        }
    }
    if let Some(path) = &trace_out {
        let m = snapshot
            .as_ref()
            .expect("--no-metrics conflict is asserted");
        let traces = server.metrics_hub().trace_dump();
        report_traces(path, &traces, m, report.num_batches as u64);
    }
    if let Some(d) = &report.durability {
        println!(
            "durability: {} WAL records / {} bytes / {} fsync(s) / {} rotation(s), {} snapshot(s) ({:.1} ms total, last epoch {}), fsync {}, acked epoch {}",
            d.wal_records,
            d.wal_bytes,
            d.wal_fsyncs,
            d.wal_rotations,
            d.snapshots,
            d.snapshot_ms_total,
            d.last_snapshot_epoch,
            fsync.label(),
            d.acked_epoch
        );
    }
    if let Some(c) = &report.cache {
        println!(
            "cache: hits {} / misses {} (hit rate {:.1}%), {} stale serve(s), stale age p50/p95/max {}/{}/{} (bound {} epochs), {} entr(ies), {} evicted, {} expired",
            c.stats.hits,
            c.stats.misses,
            c.hit_rate * 100.0,
            c.stats.served_stale,
            c.stale_age.p50,
            c.stale_age.p95,
            c.stale_age.max,
            c.staleness_bound_epochs,
            c.stats.entries,
            c.stats.evictions,
            c.stats.expired,
        );
    }
    if num_tenants > 1 {
        print_tenant_table(&report);
        check_overload_contract(
            &report,
            policy,
            submitted,
            dropped_at_submit,
            stale_at_submit,
            offered_load > 0.0,
        );
        // Cross-tenant scheduling reorders the merged stream, so the
        // shared-state chronology metric is reported, not asserted — it is
        // clean exactly when tenants touch disjoint vertex sets.
        println!(
            "chronology: commit log {} ({} commits)",
            if report.commit_log_clean {
                "clean"
            } else {
                "cross-tenant reordering observed"
            },
            report.commits
        );
    } else {
        assert!(report.commit_log_clean, "pipeline violated chronology");
    }

    let checked_events: usize = served.iter().map(|b| b.events.len()).sum();
    let total_dropped: u64 = report.tenants.iter().map(|t| t.dropped()).sum();
    assert_eq!(
        checked_events as u64 + total_dropped,
        recovered_events + submitted,
        "events lost in flight (served {checked_events} + dropped {total_dropped}, \
         recovered {recovered_events})"
    );
    // --- Identity check: the engine running the same numeric path must
    // reproduce the served embeddings bitwise over the served batch
    // sequence (batched → Serial f32; quantized → ExecMode::Quantized).
    // With drop policies the engine replays exactly the *served* events —
    // what was dropped at admission never entered the semantics.  The
    // replay only reconstructs the reference when every post-warm-up state
    // transition is in `served`: a recovery whose source run delivered (and
    // acked) epochs carries their effect in the restored state alone, so
    // the engine cannot follow (the crash drill never acks, so it always
    // replays).
    let replay_complete = recovered_events == resume as u64;
    if replay_complete && backends.is_some() {
        // Heterogeneous identity: each served batch must be bit-identical
        // to the standalone engine of *its* backend replaying the server's
        // exact batch sequence.  Both reference engines replay every batch
        // — their memory paths are the same f32 kernels (the int8 weight
        // set leaves the GRU unquantized), so the shared state trajectory
        // stays in lockstep — and the comparison selects per batch which
        // engine is authoritative (hwsim computes with the f32 kernels and
        // only models latency, so it verifies against the f32 engine).
        let mut f32_model = model.clone();
        f32_model.detach_quantized();
        let mut f32_engine =
            InferenceEngine::new(f32_model, graph.num_nodes()).with_mode(ExecMode::Batched);
        f32_engine.warm_up(&warm_events, &graph);
        let mut int8_engine = quant.as_ref().map(|_| {
            let mut e = InferenceEngine::new(model.clone(), graph.num_nodes())
                .with_mode(ExecMode::Quantized);
            e.warm_up(&warm_events, &graph);
            e
        });
        let mut compared = 0usize;
        for batch in served.iter().filter(|b| b.epoch > 0) {
            let events = EventBatch::new(batch.events.clone());
            let f32_out = f32_engine.process_batch(&events, &graph);
            let int8_out = int8_engine
                .as_mut()
                .map(|e| e.process_batch(&events, &graph));
            let reference = if batch.backend == BackendKind::Int8 {
                int8_out
                    .expect("an int8-routed batch requires an int8 tenant")
                    .embeddings
            } else {
                f32_out.embeddings
            };
            assert_eq!(
                reference, batch.embeddings,
                "pipeline embeddings diverged bitwise from the {} engine in epoch {}",
                batch.backend, batch.epoch
            );
            assert_eq!(
                batch.modeled_latency.is_some(),
                batch.backend == BackendKind::HwSim,
                "modeled latency must appear exactly on hwsim batches (epoch {})",
                batch.epoch
            );
            compared += 1;
        }
        println!(
            "identity: {} micro-batches bit-identical to their per-backend engines \
             (f32→ExecMode::Batched, int8→ExecMode::Quantized, hwsim→f32 kernels + modeled latency)",
            compared
        );
    } else if replay_complete {
        let mut engine = match &quant {
            None => {
                InferenceEngine::new(model.clone(), graph.num_nodes()).with_mode(ExecMode::Serial)
            }
            Some(q) => {
                let mut f32_model = model.clone();
                f32_model.detach_quantized();
                InferenceEngine::new(f32_model, graph.num_nodes()).with_quantized(q.clone())
            }
        };
        engine.warm_up(&warm_events, &graph);
        // Epoch 0 marks a cache-served stale answer: it never entered the
        // pipeline, so the engine replay skips it (its bit-identity against
        // the originally served embedding is the cache's own contract,
        // asserted in the scenario harness and `serve/tests/cache.rs`).
        let pipeline_batches = served.iter().filter(|b| b.epoch > 0);
        for batch in pipeline_batches.clone() {
            let reference = engine.process_batch(&EventBatch::new(batch.events.clone()), &graph);
            assert_eq!(
                reference.embeddings, batch.embeddings,
                "pipeline embeddings diverged bitwise from the {exec_mode} engine in epoch {}",
                batch.epoch
            );
        }
        println!(
            "identity: {} embeddings across {} micro-batches bit-identical to the {} engine{}",
            report.num_embeddings,
            pipeline_batches.count(),
            if quantized {
                "ExecMode::Quantized"
            } else {
                "ExecMode::Serial"
            },
            if total_dropped > 0 {
                format!(" ({total_dropped} events shed at admission, accounted)")
            } else {
                String::new()
            }
        );
    } else {
        println!(
            "identity: skipped — {} recovered event(s) were already delivered before the \
             crash and live only in the restored state",
            resume as u64 - recovered_events
        );
    }

    // --- Quantized accuracy: served int8 embeddings vs the f32 serial
    // reference over the same micro-batch sequence.
    let accuracy = (quantized && replay_complete).then(|| {
        let mut f32_model = model.clone();
        f32_model.detach_quantized();
        let mut serial =
            InferenceEngine::new(f32_model, graph.num_nodes()).with_mode(ExecMode::Serial);
        serial.warm_up(&warm_events, &graph);
        let mut worst_cos: f32 = 1.0;
        let mut cos_sum = 0.0f64;
        let mut count = 0usize;
        let mut max_err: f32 = 0.0;
        for batch in served.iter().filter(|b| b.epoch > 0) {
            let reference = serial.process_batch(&EventBatch::new(batch.events.clone()), &graph);
            for ((v_a, e_a), (v_b, e_b)) in reference.embeddings.iter().zip(&batch.embeddings) {
                assert_eq!(v_a, v_b, "vertex order diverged in accuracy replay");
                let cos = cosine_agreement(e_a, e_b);
                worst_cos = worst_cos.min(cos);
                cos_sum += cos as f64;
                count += 1;
                max_err = max_err.max(max_abs_diff(e_a, e_b));
            }
        }
        let mean_cos = cos_sum / count.max(1) as f64;
        println!(
            "accuracy: embedding cosine vs f32 serial — min {worst_cos:.6}, mean {mean_cos:.6}, max abs err {max_err:.5}"
        );
        assert!(
            worst_cos >= QUANT_COSINE_FLOOR,
            "quantized serve accuracy below the floor: cosine {worst_cos} < {QUANT_COSINE_FLOOR}"
        );
        (worst_cos, mean_cos, max_err)
    });

    // --- Durability overhead: replay the identical single-tenant feed with
    // durability off and compare throughput (the subsystem's budget at the
    // default fsync policy is < 15%, recorded in the baseline row).  Both
    // sides take the best of two windows — throughput noise on a shared
    // host is one-sided (interference only ever slows a pass down), so
    // best-of-K with the same K on each side is the fair low-variance
    // estimator; single windows at this scale swing by ±15% on their own.
    let overhead_pct = (report.durability.is_some()
        && !recover_mode
        && crash_at.is_none()
        && num_tenants == 1
        && offered_load == 0.0)
        .then(|| {
            let run_pass = |durability: Option<DurabilityConfig>| -> f64 {
                let mut s = StreamServer::new(
                    model.clone(),
                    graph.clone(),
                    ServeConfig {
                        max_batch,
                        batch_deadline: Duration::from_secs(3600),
                        num_shards: NUM_SHARDS,
                        gnn_workers,
                        durability,
                        ..ServeConfig::default()
                    },
                );
                s.warm_up(&warm_events);
                for lap in 0..laps {
                    for &e in &measure_events {
                        let mut e = e;
                        e.timestamp += lap as f64 * span;
                        s.submit(e).expect("chronological stream");
                        while s.poll().is_some() {}
                    }
                }
                let r = s.drain();
                while s.poll().is_some() {}
                r.throughput_eps
            };
            // The durable probe writes under the real directory but in its
            // own subtree, invisible to WAL/snapshot discovery; removed
            // after so the main directory stays exactly what the run wrote.
            let probe_dir =
                std::path::Path::new(durability_dir.as_deref().unwrap()).join("overhead-probe");
            let _ = std::fs::remove_dir_all(&probe_dir);
            let durable_eps = report
                .throughput_eps
                .max(run_pass(Some(DurabilityConfig::new(&probe_dir).with_fsync(fsync))));
            let _ = std::fs::remove_dir_all(&probe_dir);
            let reference_eps = run_pass(None).max(run_pass(None));
            let pct = (1.0 - durable_eps / reference_eps) * 100.0;
            println!(
                "durability overhead: {pct:.1}% ({:.0} vs {:.0} edges/sec without durability, best of 2 windows each; budget 15%)",
                durable_eps, reference_eps
            );
            pct
        });

    // --- Metrics overhead: the same best-of-two-windows comparison as the
    // durability probe, but metrics-on vs metrics-off on the plain
    // (non-durable, single-tenant, unpaced) pipeline.  Recording is one
    // relaxed atomic per event plus two span records per stage per epoch,
    // so the budget is 2% (CI's smoke gate allows 5% for window noise).
    let metrics_overhead_pct = metrics_overhead_wanted.then(|| {
        assert!(
            num_tenants == 1 && offered_load == 0.0 && crash_at.is_none() && !recover_mode,
            "--metrics-overhead needs the plain single-tenant unpaced run"
        );
        // Replay to a ~80k-event window regardless of scale; at smoke scale
        // a single pass is a few milliseconds and jitter would swamp the
        // signal.
        let olaps = (80_000 / measure_events.len().max(1)).clamp(1, 512);
        let run_pass = |metrics: bool| -> f64 {
            let mut s = StreamServer::new(
                model.clone(),
                graph.clone(),
                ServeConfig {
                    max_batch,
                    batch_deadline: Duration::from_secs(3600),
                    num_shards: NUM_SHARDS,
                    gnn_workers,
                    metrics,
                    ..ServeConfig::default()
                },
            );
            s.warm_up(&warm_events);
            for lap in 0..olaps {
                for &e in &measure_events {
                    let mut e = e;
                    e.timestamp += lap as f64 * span;
                    s.submit(e).expect("chronological stream");
                    while s.poll().is_some() {}
                }
            }
            let r = s.drain();
            while s.poll().is_some() {}
            r.throughput_eps
        };
        // One discarded pass warms the page cache / thread pools / CPU
        // governor.  Then off/on windows alternate and each *adjacent pair*
        // yields one overhead estimate: adjacent windows share the host's
        // slow drift (CPU frequency, neighbours), so pairing cancels it,
        // and the median across pairs rejects the occasional window that an
        // interference burst hits anyway — wall-clock throughput of the
        // ~10-thread pipeline swings far more between distant windows than
        // the instrumentation itself ever costs.
        run_pass(false);
        let pairs: Vec<(f64, f64)> = (0..7).map(|_| (run_pass(false), run_pass(true))).collect();
        let mut pcts: Vec<f64> = pairs
            .iter()
            .map(|(off, on)| (1.0 - on / off) * 100.0)
            .collect();
        pcts.sort_by(|a, b| a.total_cmp(b));
        let pct = pcts[pcts.len() / 2];
        let on_eps = pairs.iter().map(|p| p.1).fold(0.0f64, f64::max);
        let off_eps = pairs.iter().map(|p| p.0).fold(0.0f64, f64::max);
        println!(
            "metrics overhead: {pct:.1}% (median of 7 paired windows over {olaps} lap(s); best windows {on_eps:.0} vs {off_eps:.0} edges/sec with metrics off; budget 2%)"
        );
        pct
    });

    if smoke {
        println!("smoke mode: skipping {out_path} update");
        return;
    }
    let durability_json = report.durability.as_ref().map(|d| {
        format!(
            "    \"durability\": {{ \"fsync\": \"{}\", \"snapshot_every\": {}, \"wal_records\": {}, \"wal_bytes\": {}, \"wal_fsyncs\": {}, \"wal_rotations\": {}, \"snapshots\": {}, \"snapshot_ms_total\": {:.3}, \"recovery_ms\": {:.3}, \"replayed_events\": {}, \"re_served_epochs\": {}, \"overhead_pct\": {} }},",
            fsync.label(),
            snapshot_every,
            d.wal_records,
            d.wal_bytes,
            d.wal_fsyncs,
            d.wal_rotations,
            d.snapshots,
            d.snapshot_ms_total,
            recovery.as_ref().map_or(0.0, |r| r.recovery_ms),
            recovery.as_ref().map_or(0, |r| r.replayed_events),
            recovery.as_ref().map_or(0, |r| r.re_served_epochs),
            overhead_pct.map_or("null".to_string(), |p| format!("{p:.2}")),
        )
    });
    let metrics_json = (!no_metrics).then(|| {
        let t = &report.stage_timings;
        let busy: Vec<String> = Stage::all()
            .iter()
            .map(|&s| {
                format!(
                    "\"{}\": {:.3}",
                    s.label().to_ascii_lowercase(),
                    t.get(s).as_secs_f64() * 1e3
                )
            })
            .collect();
        format!(
            "    \"metrics\": {{ \"overhead_pct\": {}, \"stage_busy_ms\": {{ {} }} }},",
            metrics_overhead_pct.map_or("null".to_string(), |p| format!("{p:.2}")),
            busy.join(", "),
        )
    });
    let slo_json = snapshot.as_ref().and_then(slo_json_row);
    let trace_json = snapshot.as_ref().map(trace_json_row);
    // Record the policy the run *actually* used (the report's, not the
    // flag's) so the row can never contradict its own tenant_stats.
    let effective_policy = report.tenants[0].policy;
    merge_pipeline_row(
        &out_path,
        &report,
        exec_mode,
        effective_policy,
        offered_load,
        accuracy,
        durability_json.as_deref(),
        metrics_json.as_deref(),
        slo_json.as_deref(),
        trace_json.as_deref(),
        None,
    );
    println!("wrote pipeline row to {out_path}");
}

/// Formats the `"slo"` row: one entry per declared objective with its burn
/// rates and verdict.  `None` when no objectives were declared.
fn slo_json_row(m: &MetricsSnapshot) -> Option<String> {
    if m.slo.is_empty() {
        return None;
    }
    let burn = |b: Option<f64>| b.map_or("null".to_string(), |v| format!("{v:.4}"));
    let rows: Vec<String> = m
        .slo
        .iter()
        .map(|s| {
            format!(
                "{{ \"name\": \"{}\", \"error_budget\": {:.4}, \"fast_burn\": {}, \"slow_burn\": {}, \"state\": \"{}\" }}",
                s.name,
                s.error_budget,
                burn(s.fast_burn),
                burn(s.slow_burn),
                burn_state_label(s.state),
            )
        })
        .collect();
    Some(format!("    \"slo\": [ {} ],", rows.join(", ")))
}

/// Formats the `"trace"` row from the snapshot's causal-trace counters.
fn trace_json_row(m: &MetricsSnapshot) -> String {
    format!(
        "    \"trace\": {{ \"begun\": {}, \"conflicts\": {}, \"overflows\": {}, \"delivery_p99_ms\": {:.4}, \"exemplars\": {}, \"head_samples\": {} }},",
        m.trace.begun,
        m.trace.conflicts,
        m.trace.overflows,
        m.trace.delivery_p99_ms,
        m.trace.exemplars.len(),
        m.trace.head_samples.len(),
    )
}

/// Whether `dir` already holds WAL segments — the signal that a durable run
/// should recover rather than start fresh.
fn wal_present(dir: &std::path::Path) -> bool {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries.flatten().any(|e| {
                let name = e.file_name();
                let name = name.to_string_lossy();
                name.starts_with("wal-") && name.ends_with(".seg")
            })
        })
        .unwrap_or(false)
}

/// Stable lower-case label of a [`BurnState`] for the bench's prints.
fn burn_state_label(b: BurnState) -> &'static str {
    match b {
        BurnState::NoData => "no-data",
        BurnState::Ok => "ok",
        BurnState::Fired => "fired",
    }
}

/// Sum of the additive segments of one decoded trace.
fn additive_sum(v: &TraceView) -> Duration {
    v.total_where(|c| SegmentId::from_code(c).is_some_and(|s| s.is_additive()))
}

/// The `--trace-out` reporter: writes the full trace dump as JSONL, prints
/// the critical-path blame table, and asserts the conservation law — every
/// complete trace's additive segments must sum to its measured admit→deliver
/// latency within 5% (plus a 500 µs absolute slack for sub-millisecond
/// epochs).  Ends with the greppable `trace-summary:` line CI parses.
fn report_traces(path: &str, traces: &[TraceView], m: &MetricsSnapshot, delivered: u64) {
    let mut jsonl = String::new();
    let mut cp = CriticalPath::new();
    let mut traced = 0u64;
    let mut unreconciled = 0u64;
    let mut max_err_pct = 0.0f64;
    for v in traces {
        let segs: Vec<String> = v
            .segments
            .iter()
            .map(|s| {
                format!(
                    "{{\"code\":{},\"label\":\"{}\",\"us\":{}}}",
                    s.code,
                    SegmentId::from_code(s.code).map_or("?", |id| id.label()),
                    s.duration.as_micros()
                )
            })
            .collect();
        jsonl.push_str(&format!(
            "{{\"epoch\":{},\"segments\":[{}]}}\n",
            v.epoch,
            segs.join(",")
        ));
        let total = v.total_where(|c| c == SegmentId::Total.code());
        if total.is_zero() {
            // Still in flight at drain (or only partially recorded): no
            // reference to reconcile against.
            continue;
        }
        traced += 1;
        let sum = additive_sum(v);
        let diff = sum.abs_diff(total);
        let err_pct = diff.as_secs_f64() / total.as_secs_f64() * 100.0;
        max_err_pct = max_err_pct.max(err_pct);
        let budget =
            Duration::from_secs_f64(total.as_secs_f64() * 0.05) + Duration::from_micros(500);
        if diff > budget {
            unreconciled += 1;
            eprintln!(
                "trace: epoch {} additive sum {:?} vs measured total {:?} (err {:.2}%)",
                v.epoch, sum, total, err_pct
            );
        }
        let additive: Vec<_> = v
            .segments
            .iter()
            .filter(|s| SegmentId::from_code(s.code).is_some_and(|id| id.is_additive()))
            .copied()
            .collect();
        cp.observe(&additive);
    }
    std::fs::write(path, jsonl).unwrap_or_else(|e| panic!("--trace-out {path}: {e}"));
    println!("trace: {} trace(s) written to {path}", traces.len());
    if cp.traces() > 0 {
        println!("critical path: segment        latency     share  dominant-in");
        for b in cp.blame() {
            println!(
                "critical path: {:<12} {:>9.3} ms {:>6.1}%  {:>5} epoch(s)",
                SegmentId::from_code(b.code).map_or("?", |id| id.label()),
                b.total.as_secs_f64() * 1e3,
                b.fraction * 100.0,
                b.dominant_in,
            );
        }
    }
    println!(
        "trace-summary: traced={traced} delivered={delivered} unreconciled={unreconciled} \
         max_err_pct={max_err_pct:.2} exemplars={} head_samples={}",
        m.trace.exemplars.len(),
        m.trace.head_samples.len(),
    );
    assert_eq!(
        unreconciled, 0,
        "causal-trace conservation violated: additive segments must tile the measured latency"
    );
    assert!(
        !m.trace.exemplars.is_empty(),
        "no tail exemplar captured — the first traced delivery always qualifies"
    );
}

/// Prints the per-tenant serving table (the overload picture).
fn print_tenant_table(report: &ServeReport) {
    println!(
        "tenant      weight  submitted  served   stale   dropped  drop%   late    p99 ms    eps"
    );
    for t in &report.tenants {
        println!(
            "{:<10} {:>6} {:>10} {:>7} {:>7} {:>9} {:>6.1} {:>6} {:>9.2} {:>8.0}",
            t.name,
            t.weight,
            t.counters.submitted,
            t.served,
            t.served_stale,
            t.dropped(),
            t.drop_rate() * 100.0,
            t.late,
            t.latency.p99_ms,
            t.throughput_eps,
        );
    }
}

/// Asserts the multi-tenant overload contract the run demonstrates: every
/// event accounted, policy-consistent drop counters, and — when the run
/// was actually overloaded — weighted-fair service within 2× of each
/// tenant's weight share.
fn check_overload_contract(
    report: &ServeReport,
    policy: OverloadPolicy,
    submitted: u64,
    dropped_at_submit: u64,
    stale_at_submit: u64,
    paced: bool,
) {
    let total_served: u64 = report.tenants.iter().map(|t| t.served).sum();
    let total_dropped: u64 = report.tenants.iter().map(|t| t.dropped()).sum();
    let total_stale: u64 = report.tenants.iter().map(|t| t.served_stale).sum();
    assert_eq!(
        total_served + total_dropped,
        submitted,
        "per-tenant accounting must cover every submitted event"
    );
    match policy {
        OverloadPolicy::Block | OverloadPolicy::Late => {
            assert_eq!(total_dropped, 0, "{} must never drop", policy.label());
        }
        OverloadPolicy::DropNewest => {
            assert_eq!(
                total_dropped, dropped_at_submit,
                "DropNewest drops are exactly the rejected submits"
            );
        }
        OverloadPolicy::DropOldest => {
            assert_eq!(dropped_at_submit, 0, "DropOldest always admits");
        }
        OverloadPolicy::ServeStale => {
            assert_eq!(
                total_dropped, dropped_at_submit,
                "ServeStale drops are exactly the cache-miss rejects"
            );
            assert_eq!(
                total_stale, stale_at_submit,
                "every ServedStale outcome delivers exactly one stale answer"
            );
        }
    }
    // Fairness is only observable while the scheduler actually arbitrates:
    // the run must be paced (an unpaced burst is admitted almost entirely
    // before the pipeline serves its first batch, so service degenerates to
    // drain order) and heavily shedding.
    if paced && total_dropped > submitted / 10 {
        let total_weight: u64 = report.tenants.iter().map(|t| u64::from(t.weight)).sum();
        for t in &report.tenants {
            let fair = total_served as f64 * t.weight as f64 / total_weight as f64;
            assert!(
                (t.served as f64) >= fair / 2.0 && (t.served as f64) <= fair * 2.0,
                "tenant {} (weight {}): served {} vs fair share {:.1} — outside 2×",
                t.name,
                t.weight,
                t.served,
                fair
            );
        }
        println!("fairness: every tenant within 2x of its weight share (asserted)");
    }
}

/// Formats and merges the top-level `"pipeline"` row.
#[allow(clippy::too_many_arguments)]
fn merge_pipeline_row(
    path: &str,
    report: &ServeReport,
    exec_mode: &str,
    policy: OverloadPolicy,
    offered_load: f64,
    accuracy: Option<(f32, f64, f32)>,
    durability_json: Option<&str>,
    metrics_json: Option<&str>,
    slo_json: Option<&str>,
    trace_json: Option<&str>,
    scenario_json: Option<&str>,
) {
    let identity = match accuracy {
        None => "    \"embeddings_bitwise_identical_to_serial\": true".to_string(),
        Some((min_cos, mean_cos, max_err)) => format!(
            "    \"embeddings_bitwise_identical_to_quantized_engine\": true,\n    \"embedding_cosine_min\": {min_cos:.6},\n    \"embedding_cosine_mean\": {mean_cos:.6},\n    \"embedding_max_abs_err\": {max_err:.6}"
        ),
    };
    let tenant_rows: Vec<String> = report
        .tenants
        .iter()
        .map(|t| {
            format!(
                "      {{ \"name\": \"{}\", \"weight\": {}, \"policy\": \"{}\", \"submitted\": {}, \"served\": {}, \"served_stale\": {}, \"dropped\": {}, \"drop_rate\": {:.4}, \"late\": {}, \"p99_ms\": {:.4}, \"events_per_sec\": {:.1} }}",
                t.name,
                t.weight,
                t.policy.label(),
                t.counters.submitted,
                t.served,
                t.served_stale,
                t.dropped(),
                t.drop_rate(),
                t.late,
                t.latency.p99_ms,
                t.throughput_eps,
            )
        })
        .collect();
    let backend_rows: Vec<String> = report
        .backends
        .iter()
        .map(|b| {
            format!(
                "      {{ \"kind\": \"{}\", \"served_batches\": {}, \"served_events\": {}, \"modeled_latency_ms\": {} }}",
                b.kind,
                b.served_batches,
                b.served_events,
                b.modeled_latency.as_ref().map_or("null".to_string(), |m| {
                    format!(
                        "{{ \"p50\": {:.4}, \"p99\": {:.4}, \"max\": {:.4} }}",
                        m.p50_ms, m.p99_ms, m.max_ms
                    )
                }),
            )
        })
        .collect();
    let backends_line = if backend_rows.is_empty() {
        String::new()
    } else {
        format!(
            "    \"backends\": [\n{}\n    ],\n",
            backend_rows.join(",\n")
        )
    };
    let durability_line = durability_json.map_or(String::new(), |d| format!("{d}\n"));
    let metrics_line = metrics_json.map_or(String::new(), |m| format!("{m}\n"));
    let slo_line = slo_json.map_or(String::new(), |s| format!("{s}\n"));
    let trace_line = trace_json.map_or(String::new(), |t| format!("{t}\n"));
    let cache_line = report.cache.as_ref().map_or(String::new(), |c| {
        format!(
            "    \"cache\": {{ \"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}, \"insertions\": {}, \"evictions\": {}, \"expired\": {}, \"served_stale\": {}, \"entries\": {}, \"staleness_bound_epochs\": {}, \"stale_age\": {{ \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {} }} }},\n",
            c.stats.hits,
            c.stats.misses,
            c.hit_rate,
            c.stats.insertions,
            c.stats.evictions,
            c.stats.expired,
            c.stats.served_stale,
            c.stats.entries,
            c.staleness_bound_epochs,
            c.stale_age.p50,
            c.stale_age.p95,
            c.stale_age.p99,
            c.stale_age.max,
        )
    });
    let scenario_line = scenario_json.map_or(String::new(), |s| format!("{s}\n"));
    let row = format!(
        "{{\n    \"events_per_sec\": {:.1},\n    \"num_batches\": {},\n    \"max_batch\": {},\n    \"num_shards\": {},\n    \"gnn_workers\": {},\n    \"exec_mode\": \"{}\",\n    \"latency_ms\": {{ \"mean\": {:.4}, \"p50\": {:.4}, \"p95\": {:.4}, \"p99\": {:.4} }},\n    \"backpressure_blocks\": {},\n    \"tenants\": {},\n    \"overload_policy\": \"{}\",\n    \"offered_load_eps\": {:.1},\n    \"commit_log_clean\": {},\n    \"tenant_stats\": [\n{}\n    ],\n{}{}{}{}{}{}{}{}\n  }}",
        report.throughput_eps,
        report.num_batches,
        MAX_BATCH,
        report.num_shards,
        report.gnn_workers,
        exec_mode,
        report.latency.mean_ms,
        report.latency.p50_ms,
        report.latency.p95_ms,
        report.latency.p99_ms,
        report.backpressure_blocks,
        report.tenants.len(),
        policy.label(),
        offered_load,
        report.commit_log_clean,
        tenant_rows.join(",\n"),
        backends_line,
        durability_line,
        metrics_line,
        slo_line,
        trace_line,
        cache_line,
        scenario_line,
        identity,
    );
    merge_baseline_row(path, "pipeline", &row);
}

/// Staleness bound (epochs) of the scenario harness cache — comfortably
/// larger than the pipeline's in-flight epoch window, so a hot vertex
/// refreshed during the warm phase is still servable through the whole
/// burst, while cold entries still age out and get swept.
const SCENARIO_STALENESS_BOUND: u64 = 32;

/// Everything the scenario harness needs from `main`'s setup.
struct ScenarioRun<'a> {
    shape: Scenario,
    model: TgnModel,
    graph: Arc<TemporalGraph>,
    warm_events: &'a [InteractionEvent],
    measure_events: &'a [InteractionEvent],
    policy: OverloadPolicy,
    ingress_capacity: usize,
    deadline_ms: f64,
    max_batch: usize,
    gnn_workers: usize,
    seed: u64,
    smoke: bool,
    no_metrics: bool,
    out_path: &'a str,
}

/// One full warm+burst pass over a scenario feed, with its submit-side
/// outcome tally (each reconciled against the tenant's report counters).
struct ScenarioPass {
    report: ServeReport,
    served: Vec<ServedBatch>,
    admitted: u64,
    stale: u64,
    dropped: u64,
    /// Tail exemplars retained by the causal-trace slab (0 with metrics off).
    trace_exemplars: usize,
}

/// The `--scenario` harness: generate the shaped feed, run it warm+burst
/// under the chosen shedding policy, verify every stale answer bit-identical
/// and within the staleness bound, compare against DropNewest on the
/// identical feed, and merge the `"scenario"` section into the pipeline row.
fn run_scenario(run: ScenarioRun) {
    // 80 micro-batches of traffic: the 60% warm phase seals enough epochs
    // to populate the cache, and the unpolled 40% burst tail exceeds the
    // pipeline's whole in-flight capacity (shallow queues, see
    // `scenario_pass`), so the ingress queue fills deterministically —
    // roughly 2x the load the admitted stream can hold in flight.
    let n = run.max_batch * 80;
    let warm_n = n * 3 / 5;
    let t_floor = run.measure_events.last().map_or(0.0, |e| e.timestamp);
    let feed = scenarios::generate(run.shape, run.measure_events, n, t_floor, run.seed);
    println!(
        "scenario: {} — {} events resampled from the {}-event measurement feed ({} warm + {} burst), policy {}, staleness bound {} epochs",
        run.shape.label(),
        n,
        run.measure_events.len(),
        warm_n,
        n - warm_n,
        run.policy.label(),
        SCENARIO_STALENESS_BOUND,
    );

    let pass = scenario_pass(&run, &feed, warm_n, run.policy, false);
    let (stale_checked, stale_beyond_bound) =
        verify_scenario_stale(&pass.served, SCENARIO_STALENESS_BOUND);

    // The SLO burn-rate hook, demonstrated against the pass above as its
    // queue-full baseline: with `preempt_stale` armed, the drop objective
    // fires under the same feed and the tenant starts answering cache hits
    // stale while the ingress queue still has space — so shedding must not
    // exceed the baseline, where stale answers require a hard-full queue.
    let preempt = (run.policy == OverloadPolicy::ServeStale && !run.no_metrics).then(|| {
        let pp = scenario_pass(&run, &feed, warm_n, OverloadPolicy::ServeStale, true);
        let preempted = pp.report.tenants[0].counters.preempt_stale;
        println!(
            "slo preemption: {} pre-emptive stale serve(s) ({} stale total), dropped {} vs {} baseline",
            preempted, pp.stale, pp.dropped, pass.dropped,
        );
        if run.shape == Scenario::PowerLaw {
            // The hot-set shape is the one the gate is for: the cache hit
            // rate is high enough that preemption must demonstrably engage,
            // and shedding early must not cost more than shedding at the
            // hard bound.  Low-locality shapes report the same numbers but
            // without the asserts — with few cache hits to absorb load,
            // run-to-run drop noise dominates the comparison.
            assert!(
                preempted > 0,
                "power-law burst never tripped the burn-rate gate"
            );
            assert!(
                pp.dropped <= pass.dropped,
                "burn-rate preemption must not shed more than the queue-full baseline ({} vs {})",
                pp.dropped,
                pass.dropped
            );
        }
        preempted
    });

    // Identity: the pipeline-served batches must still be bit-identical to
    // the serial engine replaying the same micro-batch sequence — the cache
    // and the shedding policy must not perturb what *is* served fresh.
    let mut engine =
        InferenceEngine::new(run.model.clone(), run.graph.num_nodes()).with_mode(ExecMode::Serial);
    engine.warm_up(run.warm_events, &run.graph);
    for batch in pass.served.iter().filter(|b| b.epoch > 0) {
        let reference = engine.process_batch(&EventBatch::new(batch.events.clone()), &run.graph);
        assert_eq!(
            reference.embeddings, batch.embeddings,
            "pipeline embeddings diverged bitwise from the serial engine in epoch {}",
            batch.epoch
        );
    }

    let cache = pass
        .report
        .cache
        .expect("the scenario harness always enables the cache");

    // The greppable one-line summary (CI's smoke gate parses this),
    // printed before the contract asserts so a failure comes with its
    // diagnostics.
    println!(
        "scenario-summary: shape={} policy={} submitted={} served={} stale_served={} dropped={} \
         cache_hits={} cache_misses={} cache_hit_rate={:.4} stale_age_p50={} stale_age_p95={} \
         stale_age_max={} staleness_bound={} stale_checked={} stale_beyond_bound={} \
         slo_preempt_stale={} trace_exemplars={}",
        run.shape.label(),
        run.policy.label(),
        feed.len(),
        pass.report.tenants[0].served,
        pass.stale,
        pass.dropped,
        cache.stats.hits,
        cache.stats.misses,
        cache.hit_rate,
        cache.stale_age.p50,
        cache.stale_age.p95,
        cache.stale_age.max,
        cache.staleness_bound_epochs,
        stale_checked,
        stale_beyond_bound,
        preempt.unwrap_or(0),
        pass.trace_exemplars,
    );
    if run.policy == OverloadPolicy::ServeStale {
        assert!(
            pass.stale > 0,
            "scenario {} produced no stale serves — the burst never overloaded the queue \
             or the cache never hit",
            run.shape.label()
        );
    }
    assert_eq!(
        stale_beyond_bound, 0,
        "served a stale answer older than the {SCENARIO_STALENESS_BOUND}-epoch bound"
    );

    // Served quality under the same feed, cache off the table: ServeStale
    // must shed strictly less than DropNewest, because every cache hit is
    // an answer DropNewest would have thrown away.
    let drop_newest_rate = (run.policy == OverloadPolicy::ServeStale).then(|| {
        let dn = scenario_pass(&run, &feed, warm_n, OverloadPolicy::DropNewest, false);
        let ss_rate = pass.dropped as f64 / feed.len() as f64;
        let dn_rate = dn.dropped as f64 / feed.len() as f64;
        println!(
            "degraded-mode comparison: serve-stale dropped {} ({:.2}%) vs drop-newest {} ({:.2}%) on the identical feed",
            pass.dropped,
            ss_rate * 100.0,
            dn.dropped,
            dn_rate * 100.0,
        );
        assert!(
            pass.dropped < dn.dropped,
            "serve-stale must drop strictly less than drop-newest ({} vs {})",
            pass.dropped,
            dn.dropped
        );
        dn_rate
    });

    if run.smoke {
        println!("smoke mode: skipping {} update", run.out_path);
        return;
    }
    let scenario_json = format!(
        "    \"scenario\": {{ \"shape\": \"{}\", \"events\": {}, \"warm_events\": {warm_n}, \"burst_events\": {}, \"admitted\": {}, \"served_stale\": {}, \"dropped\": {}, \"drop_rate\": {:.4}, \"drop_rate_drop_newest\": {}, \"stale_checked\": {stale_checked}, \"stale_beyond_bound\": {stale_beyond_bound}, \"slo_preempt_stale\": {}, \"trace_exemplars\": {} }},",
        run.shape.label(),
        feed.len(),
        feed.len() - warm_n,
        pass.admitted,
        pass.stale,
        pass.dropped,
        pass.dropped as f64 / feed.len() as f64,
        drop_newest_rate.map_or("null".to_string(), |r| format!("{r:.4}")),
        preempt.unwrap_or(0),
        pass.trace_exemplars,
    );
    merge_pipeline_row(
        run.out_path,
        &pass.report,
        "batched",
        run.policy,
        0.0,
        None,
        None,
        None,
        None,
        None,
        Some(&scenario_json),
    );
    println!("wrote pipeline row to {}", run.out_path);
}

/// Runs one warm+burst pass of `feed` under `policy` and reconciles the
/// submit-side tally against the tenant's report counters.
fn scenario_pass(
    run: &ScenarioRun,
    feed: &[InteractionEvent],
    warm_n: usize,
    policy: OverloadPolicy,
    preempt: bool,
) -> ScenarioPass {
    let config = ServeConfig {
        max_batch: run.max_batch,
        // Size-only sealing, as in the main run.
        batch_deadline: Duration::from_secs(3600),
        num_shards: NUM_SHARDS,
        gnn_workers: run.gnn_workers,
        // The burst phase never polls, so in-flight *capacity* — not
        // pipeline speed — decides when the ingress queue fills: shallow
        // stage/results queues make the overload (and with it the cache
        // lookups) deterministic on any host.
        admission_capacity: 8,
        stage_capacity: 1,
        results_capacity: 2,
        cache: Some(CacheConfig {
            capacity: (2 * run.graph.num_nodes()).max(4096),
            staleness_bound_epochs: SCENARIO_STALENESS_BOUND,
        }),
        tenants: vec![TenantSpec::new("scenario")
            .with_capacity(run.ingress_capacity)
            .with_policy(policy)
            .with_deadline(Duration::from_secs_f64(run.deadline_ms / 1e3))],
        metrics: !run.no_metrics,
        // The pre-emptive pass traces every delivery (each one feeds the
        // latency lane) and declares an objective the overloaded pipeline
        // cannot meet — queue wait alone exceeds it once the burst builds
        // up.  When the objective fires, a ServeStale tenant answers cache
        // hits stale *before* its ingress queue is hard-full, preserving
        // headroom for the events only the pipeline can serve.
        metrics_sampling: if preempt { 1 } else { 64 },
        slo: preempt.then(|| SloConfig {
            preempt_stale: true,
            latency_objective: Duration::from_millis(5),
            ..SloConfig::default()
        }),
        ..ServeConfig::default()
    };
    let mut server = StreamServer::new(run.model.clone(), run.graph.clone(), config);
    server.warm_up(run.warm_events);
    let mut served: Vec<ServedBatch> = Vec::new();
    let (mut admitted, mut stale, mut dropped) = (0u64, 0u64, 0u64);
    let mut submits = 0u64;
    // Pre-emptive pass only: how deep into the burst the un-polled
    // "incident" runs before the latency objective is given a chance to
    // fire — enough submits to pin the ingress queue and every bounded
    // stage queue behind it.
    let burst_prime = run.ingress_capacity + 4 * run.max_batch;
    for (i, &e) in feed.iter().enumerate() {
        if i < warm_n {
            // Warm phase: the submit loop is orders of magnitude faster
            // than the pipeline, so pace it by retrying each cache-miss
            // rejection until the event is admitted (or answered stale) —
            // that is what populates the cache the burst will lean on.
            // Every outcome occurrence is tallied, so the accounting below
            // stays balanced across retries.
            let mut tries = 0u32;
            loop {
                submits += 1;
                match server
                    .submit_for(TenantId(0), e)
                    .expect("chronological scenario feed")
                {
                    SubmitOutcome::Admitted => {
                        admitted += 1;
                        break;
                    }
                    SubmitOutcome::ServedStale => {
                        stale += 1;
                        break;
                    }
                    SubmitOutcome::Dropped => dropped += 1,
                }
                tries += 1;
                assert!(tries < 100_000, "warm phase starved: pipeline stalled");
                while let Some(b) = server.poll() {
                    served.push(b);
                }
                std::thread::sleep(Duration::from_micros(200));
            }
            while let Some(b) = server.poll() {
                served.push(b);
            }
            // DropOldest admits unconditionally (evicting silently), so the
            // retry loop above never paces it — throttle explicitly or the
            // warm phase floods the queue and evicts its own cache feed.
            if policy == OverloadPolicy::DropOldest {
                std::thread::sleep(Duration::from_micros(200));
            }
        } else {
            // Burst phase: one submit per event and no polling, so the
            // pipeline's bounded in-flight capacity fills deterministically
            // and the overload policy decides every remaining event.
            submits += 1;
            match server
                .submit_for(TenantId(0), e)
                .expect("chronological scenario feed")
            {
                SubmitOutcome::Admitted => admitted += 1,
                SubmitOutcome::ServedStale => stale += 1,
                SubmitOutcome::Dropped => dropped += 1,
            }
            // The pre-emptive pass shares the un-polled incident for its
            // first `burst_prime` submits: the pipeline wedges against the
            // unread results queue, so every in-flight batch ages far past
            // the 5 ms objective.  Draining then records those latencies
            // into the burn-rate lanes; one gate tick later `fired()`
            // observes the incident, and the rest of the burst behaves like
            // a real serving loop — polling keeps the scheduler pulling, so
            // the ingress queue dips below capacity, which is the only
            // regime where preemption (as opposed to queue-full fallback)
            // is observable.
            if preempt {
                match (i - warm_n).cmp(&burst_prime) {
                    std::cmp::Ordering::Less => {}
                    std::cmp::Ordering::Equal => {
                        std::thread::sleep(Duration::from_millis(150));
                        while let Some(b) = server.poll() {
                            served.push(b);
                        }
                        std::thread::sleep(Duration::from_millis(150));
                    }
                    std::cmp::Ordering::Greater => {
                        while let Some(b) = server.poll() {
                            served.push(b);
                        }
                    }
                }
            }
        }
    }
    let report = server.drain();
    while let Some(b) = server.poll() {
        served.push(b);
    }
    let trace_exemplars = if run.no_metrics {
        0
    } else {
        server.metrics().trace.exemplars.len()
    };
    assert_eq!(
        admitted + stale + dropped,
        submits,
        "every submit resolves to exactly one outcome"
    );
    let t = &report.tenants[0];
    assert_eq!(t.counters.submitted, submits);
    assert_eq!(
        t.served_stale, stale,
        "one stale delivery per ServedStale outcome"
    );
    if policy == OverloadPolicy::DropOldest {
        // DropOldest admits at submit time and evicts an older *queued*
        // event instead, so its drops are invisible to the outcome tally —
        // only the conservation law is checkable from outside.
        assert_eq!(t.served + t.dropped(), submits, "DropOldest conservation");
    } else {
        assert_eq!(
            t.served,
            admitted + stale,
            "after the drain, served covers every admitted event plus every stale answer"
        );
        assert_eq!(
            t.dropped(),
            dropped,
            "one recorded drop per Dropped outcome"
        );
    }
    let delivered: usize = served.iter().map(|b| b.events.len()).sum();
    assert_eq!(
        delivered as u64, t.served,
        "polled batches account for every served event"
    );
    // Report-side tallies (== the local ones for every policy but
    // DropOldest, where eviction moves drops out of the submit loop's view).
    let (served_stale, dropped) = (t.served_stale, t.dropped());
    let admitted = t.counters.admitted;
    ScenarioPass {
        report,
        served,
        admitted,
        stale: served_stale,
        dropped,
        trace_exemplars,
    }
}

/// Checks every cache-served (epoch 0) batch: flagged `Stale` within the
/// bound, and bit-identical to the embedding the pipeline originally served
/// for its `(vertex, source epoch)`.  Returns `(entries checked, answers
/// beyond the bound)`.
fn verify_scenario_stale(served: &[ServedBatch], bound: u64) -> (usize, u64) {
    let mut history: HashMap<u64, HashMap<u32, &[Float]>> = HashMap::new();
    for b in served.iter().filter(|b| b.epoch > 0) {
        let per = history.entry(b.epoch).or_default();
        for (v, emb) in &b.embeddings {
            per.insert(*v, emb.as_slice());
        }
    }
    let mut checked = 0usize;
    let mut beyond = 0u64;
    for b in served.iter().filter(|b| b.epoch == 0) {
        assert_eq!(
            b.embeddings.len(),
            b.cache_epochs.len(),
            "a stale batch records one source epoch per embedding"
        );
        let age = match b.metas.first().map(|m| m.disposition) {
            Some(Disposition::Stale { age_epochs }) => age_epochs,
            other => panic!("epoch-0 batch without a Stale disposition: {other:?}"),
        };
        if age > bound {
            beyond += 1;
        }
        for ((v, emb), &src_epoch) in b.embeddings.iter().zip(&b.cache_epochs) {
            let original = history
                .get(&src_epoch)
                .and_then(|m| m.get(v))
                .unwrap_or_else(|| {
                    panic!(
                        "stale answer cites epoch {src_epoch} vertex {v}, never served by the pipeline"
                    )
                });
            assert_eq!(
                *original,
                emb.as_slice(),
                "stale answer for vertex {v} diverged bitwise from the embedding served in epoch {src_epoch}"
            );
            checked += 1;
        }
    }
    (checked, beyond)
}
