//! Streaming-pipeline throughput/latency benchmark and identity check.
//!
//! Streams the Wikipedia-like preset through the pipelined `StreamServer`,
//! verifies the served embeddings against a reference engine replaying the
//! exact micro-batch sequence the server used, and extends
//! `BENCH_baseline.json` (written by `perf_baseline`) with a `"pipeline"`
//! row: events/sec plus mean/p50/p95/p99 micro-batch latency.
//!
//! Run with: `cargo run --release -p tgnn-bench --bin serve_bench -- --scale 0.02`
//!
//! `--exec-mode {batched,quantized}` selects the numeric path:
//!
//! * `batched` (default) — f32 serving; the served embeddings must be
//!   **bit-identical** to `ExecMode::Serial`.
//! * `quantized` — int8 serving: the model is calibrated on the warm-up
//!   split and quantized (`tgnn_core::quantized`), and the pipeline runs the
//!   packed int8 kernels.  The served embeddings must be bit-identical to
//!   `ExecMode::Quantized` replaying the same batches (the pipeline adds no
//!   numeric drift of its own), and their accuracy against the f32 serial
//!   reference (cosine / max-abs error) is measured and recorded.
//!
//! `--gnn-workers <n>` sizes the data-parallel GNN compute pool (default 1);
//! the identity check holds for every pool size and both exec modes, and
//! both are recorded in the `"pipeline"` row.  `--smoke` runs a tiny
//! fixed-seed configuration and skips the JSON merge — the CI step after
//! `perf_baseline`, failing (via the identity assertion) on any
//! pipelined-vs-engine divergence.

use std::sync::Arc;
use std::time::Duration;
use tgnn_bench::{build_model, harness_model_config, merge_baseline_row, Dataset, HarnessArgs};
use tgnn_core::quantized::quantize_model;
use tgnn_core::{ExecMode, InferenceEngine, OptimizationVariant};
use tgnn_graph::EventBatch;
use tgnn_quant::QuantConfig;
use tgnn_serve::{ServeConfig, ServeReport, ServedBatch, StreamServer};
use tgnn_tensor::stats::{cosine_agreement, max_abs_diff};

const MAX_BATCH: usize = 200;
const NUM_SHARDS: usize = 4;

/// Embedding-accuracy floor of the quantized serve path vs the f32 serial
/// reference (worst pair over the whole stream).
const QUANT_COSINE_FLOOR: f32 = 0.999;

fn main() {
    let mut args = HarnessArgs::parse();
    let argv: Vec<String> = std::env::args().collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    if smoke {
        args.scale = 0.005;
    }
    let flag_value = |name: &'static str| {
        argv.iter()
            .position(|a| a == name)
            .map(|i| argv.get(i + 1).cloned())
    };
    let out_path = flag_value("--out")
        .flatten()
        .unwrap_or_else(|| "BENCH_baseline.json".to_string());
    // Unlike the HarnessArgs flags, a missing or malformed value here is a
    // hard error: CI's identity checks must not silently degrade to the
    // default configuration.
    let gnn_workers: usize = match flag_value("--gnn-workers") {
        None => 1,
        Some(v) => v
            .as_deref()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("--gnn-workers: expected a worker count, got {v:?}")),
    };
    let quantized: bool = match flag_value("--exec-mode") {
        None => false,
        Some(v) => match v.as_deref() {
            Some("batched") => false,
            Some("quantized") => true,
            other => panic!("--exec-mode: expected batched|quantized, got {other:?}"),
        },
    };

    let graph = Arc::new(Dataset::Wikipedia.graph(args.scale, args.seed));
    let variant = OptimizationVariant::NpMedium;
    let cfg = harness_model_config(&graph, variant);
    let mut model = build_model(&graph, &cfg, args.seed);
    // Warm the vertex state on the train split, then measure on the events
    // after it — the served stream must stay chronological past the warm-up.
    let warm_events = graph.train_events().to_vec();
    let measure_events = graph.events()[graph.train_end()..].to_vec();
    let exec_mode = if quantized { "quantized" } else { "batched" };
    println!(
        "dataset: Wikipedia-like @ scale {} — {} nodes, {} events, variant {}, {} shards, {} gnn worker(s), exec-mode {}{}",
        args.scale,
        graph.num_nodes(),
        measure_events.len(),
        variant.label(),
        NUM_SHARDS,
        gnn_workers,
        exec_mode,
        if smoke { " (smoke)" } else { "" }
    );

    // Quantized mode: calibrate on the warm-up split (replayed from cold
    // state by the calibration engine) and attach the int8 weight set —
    // the pipeline itself runs unchanged.
    let quant = quantized.then(|| {
        let q = Arc::new(quantize_model(
            &model,
            &graph,
            &[],
            &warm_events,
            MAX_BATCH,
            QuantConfig::default(),
        ));
        model.attach_quantized(q.clone());
        q
    });

    // --- Pipelined serving run.
    let serve_config = ServeConfig {
        max_batch: MAX_BATCH,
        // Size-only sealing keeps the micro-batch boundaries deterministic
        // for the identity replay below.
        batch_deadline: Duration::from_secs(3600),
        num_shards: NUM_SHARDS,
        gnn_workers,
        ..ServeConfig::default()
    };
    let mut server = StreamServer::new(model.clone(), graph.clone(), serve_config);
    server.warm_up(&warm_events);
    let mut served: Vec<ServedBatch> = Vec::new();
    for &e in &measure_events {
        server.submit(e).expect("chronological stream");
        while let Some(b) = server.poll() {
            served.push(b);
        }
    }
    let report = server.drain();
    while let Some(b) = server.poll() {
        served.push(b);
    }
    println!(
        "pipeline: {:>10.0} edges/sec over {} micro-batches — latency mean {:.3} ms, p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms",
        report.throughput_eps,
        report.num_batches,
        report.latency.mean_ms,
        report.latency.p50_ms,
        report.latency.p95_ms,
        report.latency.p99_ms
    );
    assert!(report.commit_log_clean, "pipeline violated chronology");

    // --- Identity check: the engine running the same numeric path must
    // reproduce the served embeddings bitwise over the served batch
    // sequence (batched → Serial f32; quantized → ExecMode::Quantized).
    let mut engine = match &quant {
        None => InferenceEngine::new(model.clone(), graph.num_nodes()).with_mode(ExecMode::Serial),
        Some(q) => {
            let mut f32_model = model.clone();
            f32_model.detach_quantized();
            InferenceEngine::new(f32_model, graph.num_nodes()).with_quantized(q.clone())
        }
    };
    engine.warm_up(&warm_events, &graph);
    let mut checked_events = 0usize;
    for batch in &served {
        let reference = engine.process_batch(&EventBatch::new(batch.events.clone()), &graph);
        assert_eq!(
            reference.embeddings, batch.embeddings,
            "pipeline embeddings diverged bitwise from the {exec_mode} engine in epoch {}",
            batch.epoch
        );
        checked_events += batch.events.len();
    }
    assert_eq!(
        checked_events,
        measure_events.len(),
        "events lost in flight"
    );
    println!(
        "identity: {} embeddings across {} micro-batches bit-identical to the {} engine",
        report.num_embeddings,
        served.len(),
        if quantized {
            "ExecMode::Quantized"
        } else {
            "ExecMode::Serial"
        }
    );

    // --- Quantized accuracy: served int8 embeddings vs the f32 serial
    // reference over the same micro-batch sequence.
    let accuracy = quantized.then(|| {
        let mut f32_model = model.clone();
        f32_model.detach_quantized();
        let mut serial =
            InferenceEngine::new(f32_model, graph.num_nodes()).with_mode(ExecMode::Serial);
        serial.warm_up(&warm_events, &graph);
        let mut worst_cos: f32 = 1.0;
        let mut cos_sum = 0.0f64;
        let mut count = 0usize;
        let mut max_err: f32 = 0.0;
        for batch in &served {
            let reference = serial.process_batch(&EventBatch::new(batch.events.clone()), &graph);
            for ((v_a, e_a), (v_b, e_b)) in reference.embeddings.iter().zip(&batch.embeddings) {
                assert_eq!(v_a, v_b, "vertex order diverged in accuracy replay");
                let cos = cosine_agreement(e_a, e_b);
                worst_cos = worst_cos.min(cos);
                cos_sum += cos as f64;
                count += 1;
                max_err = max_err.max(max_abs_diff(e_a, e_b));
            }
        }
        let mean_cos = cos_sum / count.max(1) as f64;
        println!(
            "accuracy: embedding cosine vs f32 serial — min {worst_cos:.6}, mean {mean_cos:.6}, max abs err {max_err:.5}"
        );
        assert!(
            worst_cos >= QUANT_COSINE_FLOOR,
            "quantized serve accuracy below the floor: cosine {worst_cos} < {QUANT_COSINE_FLOOR}"
        );
        (worst_cos, mean_cos, max_err)
    });

    if smoke {
        println!("smoke mode: skipping {out_path} update");
        return;
    }
    merge_pipeline_row(&out_path, &report, exec_mode, accuracy);
    println!("wrote pipeline row to {out_path}");
}

/// Formats and merges the top-level `"pipeline"` row.
fn merge_pipeline_row(
    path: &str,
    report: &ServeReport,
    exec_mode: &str,
    accuracy: Option<(f32, f64, f32)>,
) {
    let identity = match accuracy {
        None => "    \"embeddings_bitwise_identical_to_serial\": true".to_string(),
        Some((min_cos, mean_cos, max_err)) => format!(
            "    \"embeddings_bitwise_identical_to_quantized_engine\": true,\n    \"embedding_cosine_min\": {min_cos:.6},\n    \"embedding_cosine_mean\": {mean_cos:.6},\n    \"embedding_max_abs_err\": {max_err:.6}"
        ),
    };
    let row = format!(
        "{{\n    \"events_per_sec\": {:.1},\n    \"num_batches\": {},\n    \"max_batch\": {},\n    \"num_shards\": {},\n    \"gnn_workers\": {},\n    \"exec_mode\": \"{}\",\n    \"latency_ms\": {{ \"mean\": {:.4}, \"p50\": {:.4}, \"p95\": {:.4}, \"p99\": {:.4} }},\n    \"backpressure_blocks\": {},\n{}\n  }}",
        report.throughput_eps,
        report.num_batches,
        MAX_BATCH,
        report.num_shards,
        report.gnn_workers,
        exec_mode,
        report.latency.mean_ms,
        report.latency.p50_ms,
        report.latency.p95_ms,
        report.latency.p99_ms,
        report.backpressure_blocks,
        identity,
    );
    merge_baseline_row(path, "pipeline", &row);
}
