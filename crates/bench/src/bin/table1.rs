//! Table I — operation counts (kMEM / kMAC) and per-stage execution time per
//! dynamic node embedding for the baseline TGN-attn model.
//!
//! The kMEM/kMAC columns come from the analytical complexity model and are
//! cross-checked against the counters of the executing inference engine; the
//! execution-time columns report (a) the measured per-stage time of the Rust
//! reference implementation on this machine (single thread) and (b) the
//! calibrated CPU (1 thread / 32 threads) and GPU cost models standing in for
//! the paper's platforms.

use tgnn_bench::{build_model, harness_model_config, Dataset, HarnessArgs};
use tgnn_core::complexity::per_embedding_ops;
use tgnn_core::profiling::Stage;
use tgnn_core::{InferenceEngine, OptimizationVariant};
use tgnn_hwsim::baseline::{BaselinePlatform, BaselineSimulator};

fn main() {
    let args = HarnessArgs::parse();
    println!("# Table I — per-embedding complexity and execution-time breakdown");
    println!(
        "(synthetic datasets at scale {}, baseline TGN-attn model)\n",
        args.scale
    );

    for dataset in [Dataset::Wikipedia, Dataset::Reddit] {
        let graph = dataset.graph(args.scale, args.seed);
        let paper_cfg = tgnn_bench::paper_model_config(dataset, OptimizationVariant::Baseline);
        let ops = per_embedding_ops(&paper_cfg);

        // Measured per-stage time of the Rust reference on this machine.
        let run_cfg = harness_model_config(&graph, OptimizationVariant::Baseline);
        let model = build_model(&graph, &run_cfg, args.seed);
        let mut engine = InferenceEngine::new(model, graph.num_nodes());
        let events = graph.events();
        let take = events.len().min(4_000);
        let report = engine.run_stream(&events[..take], &graph, 200);

        let baselines = [
            BaselinePlatform::CpuSingleThread,
            BaselinePlatform::CpuMultiThread,
            BaselinePlatform::Gpu,
        ]
        .map(|p| BaselineSimulator::new(p, paper_cfg.clone()).stage_micros());

        println!("## {}", dataset.name());
        tgnn_bench::print_header(&[
            "stage",
            "kMEM",
            "MEM %",
            "kMAC",
            "MAC %",
            "measured 1-thread (ns)",
            "model: CPU 1T (us)",
            "model: CPU 32T (us)",
            "model: GPU (us)",
        ]);
        let total = ops.total();
        for (i, stage) in Stage::all().into_iter().enumerate() {
            let s = ops.stage(stage);
            tgnn_bench::print_row(&[
                stage.label().to_string(),
                format!("{:.1}", s.mems as f64 / 1e3),
                format!("{:.1}%", 100.0 * s.mems as f64 / total.mems.max(1) as f64),
                format!("{:.1}", s.macs as f64 / 1e3),
                format!("{:.1}%", 100.0 * s.macs as f64 / total.macs.max(1) as f64),
                format!(
                    "{:.0}",
                    report.timings.nanos_per_item(stage, report.num_embeddings)
                ),
                format!("{:.0}", baselines[0][i]),
                format!("{:.0}", baselines[1][i]),
                format!("{:.0}", baselines[2][i]),
            ]);
        }
        tgnn_bench::print_row(&[
            "total".into(),
            format!("{:.1}", total.mems as f64 / 1e3),
            "100%".into(),
            format!("{:.1}", total.macs as f64 / 1e3),
            "100%".into(),
            format!(
                "{:.0}",
                report.timings.total().as_nanos() as f64 / report.num_embeddings.max(1) as f64
            ),
            format!("{:.0}", baselines[0].iter().sum::<f64>()),
            format!("{:.0}", baselines[1].iter().sum::<f64>()),
            format!("{:.0}", baselines[2].iter().sum::<f64>()),
        ]);
        println!(
            "\nengine-counted per-embedding: {} MACs, {} MEMs ({} embeddings)\n",
            report.ops_per_embedding().macs,
            report.ops_per_embedding().mems,
            report.num_embeddings
        );
    }
}
