//! The int8 accuracy gate — CI fails this binary when quantization costs
//! more accuracy than the documented budget.
//!
//! On a fixed seed the gate trains a small TGN bundle (self-supervised, the
//! paper's protocol at harness scale), calibrates + quantizes it, and
//! compares the int8 path against f32 on two axes:
//!
//! 1. **Embedding fidelity** — streaming the test split through
//!    `ExecMode::Batched` and `ExecMode::Quantized`, the worst per-vertex
//!    embedding cosine must stay ≥ [`COSINE_FLOOR`].
//! 2. **Task accuracy** — temporal link-prediction Average Precision with
//!    the same decoder and the same negative samples: the int8 AP may drop
//!    at most [`AP_DELTA_MAX`] below f32.
//!
//! Both thresholds are the documented accuracy budget of the int8 backend
//! (see README "Numerics & quantization").  Unless `--smoke`, the measured
//! numbers are merged into `BENCH_baseline.json` under `"quant_gate"`.
//!
//! Run with:
//! `cargo run --release -p tgnn-bench --bin quant_gate -- --scale 0.02 --seed 7 --epochs 2`

use std::sync::Arc;
use tgnn_bench::{harness_model_config, merge_baseline_row, Dataset, HarnessArgs};
use tgnn_core::link_prediction::evaluate_link_prediction;
use tgnn_core::quantized::quantize_model;
use tgnn_core::training::{TrainConfig, Trainer};
use tgnn_core::{ExecMode, InferenceEngine, OptimizationVariant, TimeEncoderKind};
use tgnn_graph::EventBatch;
use tgnn_quant::QuantConfig;
use tgnn_tensor::stats::{cosine_agreement, max_abs_diff};
use tgnn_tensor::TensorRng;

/// Worst-pair embedding cosine the int8 path must maintain vs f32.
const COSINE_FLOOR: f32 = 0.999;
/// Maximum tolerated link-prediction AP drop (absolute) vs f32.
const AP_DELTA_MAX: f32 = 0.02;

/// Binary-specific flags, enumerated for `--help`.
const GATE_FLAGS: &[tgnn_bench::FlagHelp] = &[
    (
        "--out",
        "<path>",
        "baseline JSON to merge the quant_gate row into (default BENCH_baseline.json)",
    ),
    ("--smoke", "", "tiny fixed configuration, 1 epoch"),
];

fn main() {
    let mut args = HarnessArgs::parse_or_help(
        "quant_gate",
        "int8 accuracy gate: train a fixed-seed bundle, calibrate + quantize, fail the \
         build if embedding cosine or link-prediction AP regress past the budget.",
        GATE_FLAGS,
    );
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        args.scale = 0.005;
        args.epochs = 1;
    }
    let out_path = {
        let argv: Vec<String> = std::env::args().collect();
        argv.windows(2)
            .find(|w| w[0] == "--out")
            .map(|w| w[1].clone())
            .unwrap_or_else(|| "BENCH_baseline.json".to_string())
    };

    let graph = Dataset::Wikipedia.graph(args.scale, args.seed);
    let variant = OptimizationVariant::NpMedium;
    let cfg = harness_model_config(&graph, variant);
    println!(
        "quant gate: Wikipedia-like @ scale {} seed {} — {} events, variant {}, {} epochs{}",
        args.scale,
        args.seed,
        graph.num_events(),
        variant.label(),
        args.epochs,
        if smoke { " (smoke)" } else { "" }
    );

    // --- Train the f32 bundle (model + decoder) and mirror deployment by
    // calibrating the LUT time encoder afterwards.
    let train_cfg = TrainConfig {
        epochs: args.epochs,
        batch_size: 100,
        learning_rate: 1e-3,
        decoder_hidden: 32,
        seed: args.seed,
    };
    let trainer = Trainer::new(train_cfg.clone());
    let mut bundle = trainer.train(&cfg, &graph);
    if bundle.model.config.time_encoder == TimeEncoderKind::Lut {
        let deltas = tgnn_data::delta_t::memory_delta_t(graph.events(), graph.num_nodes());
        bundle.model.calibrate_lut(&deltas);
    }

    // --- f32 reference AP (the trainer's own protocol: warm on train+val,
    // evaluate the test split).
    let f32_eval = trainer.evaluate(&bundle, &graph, 200);

    // --- Calibrate + quantize on the train split, then evaluate the int8
    // path with the *same* decoder and the *same* negative-sample RNG.
    let q = Arc::new(quantize_model(
        &bundle.model,
        &graph,
        &[],
        graph.train_events(),
        200,
        QuantConfig::default(),
    ));
    let mut rng = TensorRng::new(train_cfg.seed ^ 0xea1);
    let mut q_engine =
        InferenceEngine::new(bundle.model.clone(), graph.num_nodes()).with_quantized(q.clone());
    q_engine.warm_up(graph.train_events(), &graph);
    q_engine.warm_up(graph.val_events(), &graph);
    let int8_eval = evaluate_link_prediction(
        &mut q_engine,
        &bundle.decoder,
        graph.test_events(),
        &graph,
        200,
        &mut rng,
    );

    // --- Embedding fidelity over the test split: Batched (f32) vs Quantized
    // engines on identical batch boundaries.
    let mut f32_engine =
        InferenceEngine::new(bundle.model.clone(), graph.num_nodes()).with_mode(ExecMode::Batched);
    let mut q_engine =
        InferenceEngine::new(bundle.model.clone(), graph.num_nodes()).with_quantized(q);
    for engine in [&mut f32_engine, &mut q_engine] {
        engine.warm_up(graph.train_events(), &graph);
        engine.warm_up(graph.val_events(), &graph);
    }
    let mut cos_min: f32 = 1.0;
    let mut cos_sum = 0.0f64;
    let mut count = 0usize;
    let mut max_err: f32 = 0.0;
    for chunk in graph.test_events().chunks(200) {
        let batch = EventBatch::new(chunk.to_vec());
        let reference = f32_engine.process_batch(&batch, &graph);
        let quantized = q_engine.process_batch(&batch, &graph);
        for ((v_a, e_a), (v_b, e_b)) in reference.embeddings.iter().zip(&quantized.embeddings) {
            assert_eq!(v_a, v_b, "vertex order diverged between f32 and int8");
            let cos = cosine_agreement(e_a, e_b);
            cos_min = cos_min.min(cos);
            cos_sum += cos as f64;
            count += 1;
            max_err = max_err.max(max_abs_diff(e_a, e_b));
        }
    }
    let cos_mean = cos_sum / count.max(1) as f64;

    let ap_delta = f32_eval.average_precision - int8_eval.average_precision;
    println!(
        "link prediction AP: f32 {:.4} vs int8 {:.4} (delta {:+.4}, budget {AP_DELTA_MAX})",
        f32_eval.average_precision, int8_eval.average_precision, -ap_delta
    );
    println!(
        "embedding fidelity: cosine min {cos_min:.6} (floor {COSINE_FLOOR}), mean {cos_mean:.6}, max abs err {max_err:.5} over {count} embeddings"
    );

    assert_eq!(
        f32_eval.num_positives, int8_eval.num_positives,
        "evaluation protocols diverged"
    );
    assert!(
        cos_min >= COSINE_FLOOR,
        "ACCURACY GATE FAILED: embedding cosine {cos_min} below the {COSINE_FLOOR} floor"
    );
    assert!(
        ap_delta <= AP_DELTA_MAX,
        "ACCURACY GATE FAILED: int8 AP dropped {ap_delta:.4} (> {AP_DELTA_MAX}) below f32"
    );
    println!("accuracy gate passed");

    if smoke {
        println!("smoke mode: skipping {out_path} update");
        return;
    }
    let row = format!(
        "{{\n    \"ap_f32\": {:.5},\n    \"ap_int8\": {:.5},\n    \"ap_delta\": {:.5},\n    \"ap_delta_budget\": {AP_DELTA_MAX},\n    \"embedding_cosine_min\": {:.6},\n    \"embedding_cosine_floor\": {COSINE_FLOOR},\n    \"embedding_cosine_mean\": {:.6},\n    \"embedding_max_abs_err\": {:.6},\n    \"train_epochs\": {}\n  }}",
        f32_eval.average_precision,
        int8_eval.average_precision,
        ap_delta,
        cos_min,
        cos_mean,
        max_err,
        args.epochs,
    );
    merge_baseline_row(&out_path, "quant_gate", &row);
    println!("wrote quant_gate row to {out_path}");
}
