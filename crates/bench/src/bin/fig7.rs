//! Figure 7 — accuracy versus latency on the Wikipedia-like dataset at batch
//! size 200: TGN and the APAN-style baseline on CPU/GPU versus the co-design
//! NP(L/M/S) models on the two FPGA design points.

use tgnn_bench::{build_model, harness_model_config, Dataset, HarnessArgs};
use tgnn_core::apan::{ApanConfig, ApanModel};
use tgnn_core::distillation::{distill, DistillationConfig};
use tgnn_core::training::{TrainConfig, Trainer};
use tgnn_core::OptimizationVariant;
use tgnn_hwsim::baseline::{BaselinePlatform, BaselineSimulator};
use tgnn_hwsim::design::DesignConfig;
use tgnn_hwsim::device::FpgaDevice;
use tgnn_hwsim::AcceleratorSim;
use tgnn_tensor::TensorRng;

const BATCH_SIZE: usize = 200;

fn main() {
    let args = HarnessArgs::parse();
    println!("# Figure 7 — accuracy vs latency (Wikipedia, batch size {BATCH_SIZE})\n");

    let graph = Dataset::Wikipedia.graph(args.scale, args.seed);
    let train_cfg = TrainConfig {
        epochs: args.epochs,
        batch_size: 100,
        learning_rate: 1e-3,
        decoder_hidden: 32,
        seed: args.seed,
    };
    let trainer = Trainer::new(train_cfg.clone());
    let kd_cfg = DistillationConfig {
        temperature: 1.0,
        kd_weight: 0.5,
        train: train_cfg,
    };

    tgnn_bench::print_header(&["method", "platform", "AP", "latency (ms)"]);

    // --- TGN baseline on CPU and GPU (accuracy from the trained teacher,
    // latency from the calibrated platform models).
    let teacher_cfg = harness_model_config(&graph, OptimizationVariant::Baseline);
    let teacher = trainer.train(&teacher_cfg, &graph);
    let teacher_ap = trainer
        .evaluate(&teacher, &graph, BATCH_SIZE)
        .average_precision;
    let paper_baseline =
        tgnn_bench::paper_model_config(Dataset::Wikipedia, OptimizationVariant::Baseline);
    for platform in [BaselinePlatform::CpuMultiThread, BaselinePlatform::Gpu] {
        let sim = BaselineSimulator::new(platform, paper_baseline.clone());
        tgnn_bench::print_row(&[
            "TGN".into(),
            platform.label().into(),
            format!("{:.4}", teacher_ap),
            tgnn_bench::secs_to_ms(sim.estimate(BATCH_SIZE).latency),
        ]);
    }

    // --- APAN-style asynchronous baseline (accuracy measured, latency from
    // the platform models scaled by its much smaller synchronous work).
    let apan_cfg =
        ApanConfig::from_model_config(&harness_model_config(&graph, OptimizationVariant::Baseline));
    let mut rng = TensorRng::new(args.seed ^ 0xa9a);
    let mut apan = ApanModel::new(apan_cfg, graph.num_nodes(), &mut rng);
    let take = graph.num_events().min(6_000);
    let apan_ap = apan.evaluate_stream(&graph.events()[..take], &graph, &mut rng);
    for platform in [BaselinePlatform::CpuMultiThread, BaselinePlatform::Gpu] {
        let sim = BaselineSimulator::new(platform, paper_baseline.clone());
        // APAN skips the neighbor aggregation on the critical path: only the
        // memory + update stages remain.
        let stage = sim.stage_micros();
        let latency = (stage[1] + stage[3]) * 1e-6 * 2.0 * BATCH_SIZE as f64
            + match platform {
                BaselinePlatform::Gpu => 0.5e-3,
                _ => 150e-6,
            };
        tgnn_bench::print_row(&[
            "APAN".into(),
            platform.label().into(),
            format!("{:.4}", apan_ap),
            tgnn_bench::secs_to_ms(latency),
        ]);
    }

    // --- The co-design: distilled students on the two FPGA designs.
    for variant in [
        OptimizationVariant::NpLarge,
        OptimizationVariant::NpMedium,
        OptimizationVariant::NpSmall,
    ] {
        let student_cfg = harness_model_config(&graph, variant);
        let (student, _) = distill(&teacher, &student_cfg, &graph, &kd_cfg);
        let ap = trainer
            .evaluate(&student, &graph, BATCH_SIZE)
            .average_precision;

        for (design, device) in [
            (DesignConfig::u200(), FpgaDevice::alveo_u200()),
            (DesignConfig::zcu104(), FpgaDevice::zcu104()),
        ] {
            let model = build_model(&graph, &student_cfg, args.seed);
            let mut sim =
                AcceleratorSim::new(model, graph.num_nodes(), device.clone(), design.clone());
            let take = graph.num_events().min(2_000);
            let report = sim.simulate_stream(&graph.events()[..take], &graph, BATCH_SIZE);
            tgnn_bench::print_row(&[
                format!("Ours {}", variant.label()),
                design.name.clone(),
                format!("{:.4}", ap),
                tgnn_bench::secs_to_ms(report.mean_latency()),
            ]);
        }
    }
    println!("\n(teacher AP = {:.4}; the co-design points should sit above APAN in accuracy at similar or lower latency)", teacher_ap);
}
