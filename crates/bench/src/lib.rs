//! Shared harness code for the table/figure regeneration binaries and the
//! criterion benches.
//!
//! Every binary accepts a `--scale <f64>` argument (default 0.02) that
//! controls the fraction of the paper-scale synthetic datasets used, and a
//! `--epochs <n>` argument for the experiments that involve training.  With
//! the defaults each binary finishes in seconds; pass `--scale 1.0` to run at
//! the paper's dataset sizes.

pub mod scenarios;

use std::time::Duration;
use tgnn_core::{ModelConfig, OptimizationVariant, TgnModel, TimeEncoderKind};
use tgnn_data::{gdelt_like, generate, reddit_like, wikipedia_like, DatasetConfig};
use tgnn_graph::TemporalGraph;
use tgnn_tensor::TensorRng;

/// The three datasets evaluated in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dataset {
    Wikipedia,
    Reddit,
    Gdelt,
}

impl Dataset {
    /// All datasets in the order the paper's tables use.
    pub fn all() -> [Dataset; 3] {
        [Dataset::Wikipedia, Dataset::Reddit, Dataset::Gdelt]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Wikipedia => "Wikipedia",
            Dataset::Reddit => "Reddit",
            Dataset::Gdelt => "GDELT",
        }
    }

    /// Synthetic generator configuration at the given scale.
    pub fn config(&self, scale: f64, seed: u64) -> DatasetConfig {
        match self {
            Dataset::Wikipedia => wikipedia_like(scale, seed),
            Dataset::Reddit => reddit_like(scale, seed),
            Dataset::Gdelt => gdelt_like(scale, seed),
        }
    }

    /// Generates the synthetic graph.
    pub fn graph(&self, scale: f64, seed: u64) -> TemporalGraph {
        generate(&self.config(scale, seed))
    }
}

/// Simple command-line options shared by the binaries.
#[derive(Clone, Debug)]
pub struct HarnessArgs {
    /// Dataset scale in `(0, 1]`.
    pub scale: f64,
    /// Training epochs for the accuracy experiments.
    pub epochs: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        Self {
            scale: 0.02,
            epochs: 2,
            seed: 7,
        }
    }
}

/// A command-line flag description for the generated `--help` output:
/// `(flag, value placeholder, description)`.
pub type FlagHelp = (&'static str, &'static str, &'static str);

/// The flags every harness binary shares (parsed by [`HarnessArgs`]).
pub const SHARED_FLAGS: &[FlagHelp] = &[
    ("--scale", "<f64>", "dataset scale in (0, 1] (default 0.02)"),
    (
        "--epochs",
        "<n>",
        "training epochs for the accuracy experiments (default 2)",
    ),
    ("--seed", "<u64>", "random seed (default 7)"),
];

impl HarnessArgs {
    /// Parses `--scale`, `--epochs`, and `--seed` from `std::env::args`.
    pub fn parse() -> Self {
        let args: Vec<String> = std::env::args().collect();
        Self::parse_from(&args[1..])
    }

    /// Like [`Self::parse`], but first handles `--help`/`-h`: prints a usage
    /// message enumerating the shared flags *and* the binary's own
    /// `extra_flags`, then exits.  Every harness binary with non-shared
    /// flags routes through this so `--help` can never silently omit a
    /// flag the binary actually parses.
    pub fn parse_or_help(binary: &str, about: &str, extra_flags: &[FlagHelp]) -> Self {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--help" || a == "-h") {
            print!("{}", Self::usage(binary, about, extra_flags));
            std::process::exit(0);
        }
        Self::parse_from(&args[1..])
    }

    /// The `--help` text: one line per flag, shared flags first.
    pub fn usage(binary: &str, about: &str, extra_flags: &[FlagHelp]) -> String {
        let mut out = format!(
            "{about}\n\nUsage: cargo run --release -p tgnn-bench --bin {binary} -- [flags]\n\nFlags:\n"
        );
        let width = SHARED_FLAGS
            .iter()
            .chain(extra_flags)
            .map(|(f, v, _)| f.len() + v.len() + 1)
            .max()
            .unwrap_or(0);
        for (flag, value, desc) in SHARED_FLAGS.iter().chain(extra_flags) {
            let head = if value.is_empty() {
                flag.to_string()
            } else {
                format!("{flag} {value}")
            };
            out.push_str(&format!("  {head:<width$}  {desc}\n"));
        }
        out.push_str(&format!("  {:<width$}  print this message\n", "--help, -h"));
        out
    }

    /// Parses the known flags from an argument slice.  Unknown arguments
    /// (e.g. a binary's own valueless flags like `--smoke`) are skipped one
    /// at a time, so they cannot shift a following `--flag value` pair out
    /// of alignment; a known flag followed by another `--flag` instead of a
    /// value keeps its default and leaves the following flag to be parsed
    /// normally.
    pub fn parse_from(args: &[String]) -> Self {
        let mut out = Self::default();
        let has_value = |i: usize| i + 1 < args.len() && !args[i + 1].starts_with("--");
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" if has_value(i) => {
                    out.scale = args[i + 1].parse().unwrap_or(out.scale);
                    i += 2;
                }
                "--epochs" if has_value(i) => {
                    out.epochs = args[i + 1].parse().unwrap_or(out.epochs);
                    i += 2;
                }
                "--seed" if has_value(i) => {
                    out.seed = args[i + 1].parse().unwrap_or(out.seed);
                    i += 2;
                }
                _ => i += 1,
            }
        }
        out
    }
}

/// The model configuration the paper uses for a dataset, shrunk so the
/// harness runs quickly at small scales (the structural ratios — message vs
/// memory vs attention dimensions, 10 sampled neighbors — are preserved).
pub fn harness_model_config(graph: &TemporalGraph, variant: OptimizationVariant) -> ModelConfig {
    let mut cfg = ModelConfig::paper_default(graph.node_feature_dim(), graph.edge_feature_dim());
    cfg.memory_dim = 32;
    cfg.time_dim = 32;
    cfg.embedding_dim = 32;
    cfg.lut_bins = 64;
    cfg.with_variant(variant)
}

/// The full-size (paper) model configuration for analytical experiments that
/// do not execute the network (complexity accounting, performance model,
/// resource model).
pub fn paper_model_config(dataset: Dataset, variant: OptimizationVariant) -> ModelConfig {
    let (node_dim, edge_dim) = match dataset {
        Dataset::Wikipedia | Dataset::Reddit => (0, 172),
        Dataset::Gdelt => (200, 0),
    };
    ModelConfig::paper_default(node_dim, edge_dim).with_variant(variant)
}

/// Builds (and LUT-calibrates when needed) a model for a graph.
pub fn build_model(graph: &TemporalGraph, config: &ModelConfig, seed: u64) -> TgnModel {
    let mut rng = TensorRng::new(seed);
    let mut model = TgnModel::new(config.clone(), &mut rng);
    if config.time_encoder == TimeEncoderKind::Lut {
        let deltas = tgnn_data::delta_t::memory_delta_t(graph.events(), graph.num_nodes());
        model.calibrate_lut(&deltas);
    }
    model
}

/// Formats a duration in the unit Fig. 5 uses (milliseconds).
pub fn format_ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// Formats seconds as milliseconds.
pub fn secs_to_ms(s: f64) -> String {
    format!("{:.3}", s * 1e3)
}

/// Inserts (or replaces) a top-level `"key": { ... }` object in the
/// hand-rolled JSON baseline file (`BENCH_baseline.json`), creating the file
/// if it does not exist.  `row` is the already-formatted object body
/// including its braces; re-running with the same key is idempotent and
/// leaves every *other* row untouched, regardless of row order.
pub fn merge_baseline_row(path: &str, key: &str, row: &str) {
    let entry = format!("  \"{key}\": {row}");
    let mut body = std::fs::read_to_string(path).unwrap_or_default();
    // Splice out any previous row with this key (value span found by brace
    // balancing, so rows after it survive the replacement).
    if let Some(start) = body.find(&format!("\"{key}\":")) {
        if let Some(end) = json_value_end(&body, start) {
            // Absorb the separating comma: the preceding one if this is not
            // the first row, else the trailing one.
            let before = body[..start].trim_end();
            let (cut_start, cut_end) = if before.ends_with(',') {
                (before.len() - 1, end)
            } else {
                let after = end + body[end..].len() - body[end..].trim_start().len();
                if body[after..].starts_with(',') {
                    (body[..start].trim_end().len(), after + 1)
                } else {
                    (body[..start].trim_end().len(), end)
                }
            };
            body.replace_range(cut_start..cut_end, "");
        }
    }
    let json = match body.trim_end().strip_suffix('}') {
        // `prefix.trim() == "{"` is a file whose only row was just spliced
        // out — fall through to the fresh-file shape (a comma after the
        // bare brace would corrupt the JSON).
        Some(prefix) if !prefix.trim().is_empty() && prefix.trim() != "{" => {
            format!("{},\n{entry}\n}}\n", prefix.trim_end())
        }
        _ => format!("{{\n{entry}\n}}\n"),
    };
    std::fs::write(path, json)
        .unwrap_or_else(|e| panic!("failed to write baseline row {key:?} to {path}: {e}"));
}

/// Byte index just past the JSON value whose `"key":` starts at `key_start`
/// — brace/bracket-balanced and string-aware, so object rows end at their
/// own closing brace, not at the next occurrence of `}` in the file.
/// Returns `None` on malformed input (unbalanced braces / missing colon).
fn json_value_end(body: &str, key_start: usize) -> Option<usize> {
    let colon = key_start + body[key_start..].find(':')?;
    let bytes = body.as_bytes();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut i = colon + 1;
    while i < bytes.len() {
        let c = bytes[i];
        if in_string {
            match c {
                b'\\' => i += 1, // skip the escaped byte
                b'"' => in_string = false,
                _ => {}
            }
        } else {
            match c {
                b'"' => in_string = true,
                b'{' | b'[' => depth += 1,
                b'}' | b']' => {
                    if depth == 0 {
                        // The enclosing object's closing brace ends a scalar
                        // value (no trailing comma / newline before it).
                        return (!body[colon + 1..i].trim().is_empty()).then_some(i);
                    }
                    depth -= 1;
                    if depth == 0 {
                        return Some(i + 1);
                    }
                }
                // A scalar value ends at the next comma or closing brace at
                // depth 0.
                b',' | b'\n' if depth == 0 && !body[colon + 1..i].trim().is_empty() => {
                    return Some(i);
                }
                _ => {}
            }
        }
        i += 1;
    }
    None
}

/// Prints a markdown-style table row.
pub fn print_row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Prints a markdown-style table header with a separator line.
pub fn print_header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!(
        "|{}|",
        cells.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_cover_table_ii_dimensions() {
        let w = Dataset::Wikipedia.config(0.01, 1);
        assert_eq!(w.edge_feature_dim, 172);
        let g = Dataset::Gdelt.config(0.01, 1);
        assert_eq!(g.node_feature_dim, 200);
        assert_eq!(Dataset::all().len(), 3);
        assert_eq!(Dataset::Reddit.name(), "Reddit");
    }

    #[test]
    fn harness_config_is_valid_for_every_variant() {
        let graph = Dataset::Wikipedia.graph(0.005, 3);
        for variant in OptimizationVariant::ladder() {
            let cfg = harness_model_config(&graph, variant);
            assert!(cfg.validate().is_ok());
        }
    }

    #[test]
    fn paper_config_matches_dataset_feature_dims() {
        let cfg = paper_model_config(Dataset::Gdelt, OptimizationVariant::Baseline);
        assert_eq!(cfg.node_feature_dim, 200);
        assert_eq!(cfg.edge_feature_dim, 0);
    }

    #[test]
    fn model_builder_calibrates_lut_variants() {
        let graph = Dataset::Wikipedia.graph(0.005, 3);
        let cfg = harness_model_config(&graph, OptimizationVariant::NpMedium);
        let model = build_model(&graph, &cfg, 1);
        assert!(model.uses_lut());
        let cfg = harness_model_config(&graph, OptimizationVariant::Baseline);
        let model = build_model(&graph, &cfg, 1);
        assert!(!model.uses_lut());
    }

    #[test]
    fn args_default_and_formatting() {
        let args = HarnessArgs::default();
        assert!(args.scale > 0.0 && args.scale <= 1.0);
        assert_eq!(format_ms(Duration::from_millis(5)), "5.000");
        assert_eq!(secs_to_ms(0.001), "1.000");
    }

    #[test]
    fn merge_baseline_row_creates_appends_and_replaces() {
        let path =
            std::env::temp_dir().join(format!("tgnn_merge_test_{}.json", std::process::id()));
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);

        // Creates the file when missing.
        merge_baseline_row(path, "alpha", "{ \"x\": 1 }");
        let body = std::fs::read_to_string(path).unwrap();
        assert!(body.contains("\"alpha\": { \"x\": 1 }"), "{body}");
        assert!(body.starts_with('{') && body.trim_end().ends_with('}'));

        // Appends a second key without touching the first.
        merge_baseline_row(path, "beta", "{ \"y\": 2 }");
        let body = std::fs::read_to_string(path).unwrap();
        assert!(body.contains("\"alpha\""), "{body}");
        assert!(body.contains("\"beta\""), "{body}");

        // Re-merging an existing key replaces it (idempotent re-runs).
        merge_baseline_row(path, "beta", "{ \"y\": 3 }");
        let body = std::fs::read_to_string(path).unwrap();
        assert_eq!(body.matches("\"beta\"").count(), 1, "{body}");
        assert!(body.contains("\"y\": 3"), "{body}");
        assert!(!body.contains("\"y\": 2"), "{body}");

        // Replacing a row that is NOT last must leave the rows after it
        // intact — the perf_baseline → serve_bench → quant_gate sequence
        // re-runs `pipeline` with `quant_gate` already behind it.
        merge_baseline_row(
            path,
            "gamma",
            "{\n    \"nested\": { \"z\": \"s{t}r\" }\n  }",
        );
        merge_baseline_row(path, "beta", "{ \"y\": 4 }");
        let body = std::fs::read_to_string(path).unwrap();
        assert!(body.contains("\"alpha\""), "{body}");
        assert!(body.contains("\"y\": 4"), "{body}");
        assert!(
            body.contains("\"gamma\"") && body.contains("s{t}r"),
            "replacing a middle row must not destroy later rows: {body}"
        );
        // Replacing the FIRST row keeps everything else too.
        merge_baseline_row(path, "alpha", "{ \"x\": 9 }");
        let body = std::fs::read_to_string(path).unwrap();
        assert!(body.contains("\"x\": 9"), "{body}");
        assert!(
            body.contains("\"gamma\"") && body.contains("\"beta\""),
            "{body}"
        );
        assert_eq!(body.matches("\"alpha\"").count(), 1, "{body}");

        let _ = std::fs::remove_file(path);

        // Replacing the only row of a single-row file must not leave a
        // stray comma after the opening brace.
        merge_baseline_row(path, "solo", "{ \"v\": 1 }");
        merge_baseline_row(path, "solo", "{ \"v\": 2 }");
        let body = std::fs::read_to_string(path).unwrap();
        assert!(!body.contains("{,"), "{body}");
        assert!(body.contains("\"v\": 2"), "{body}");
        assert_eq!(body.matches("\"solo\"").count(), 1, "{body}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn valueless_flags_do_not_shift_flag_value_pairs() {
        let argv = |s: &str| -> Vec<String> { s.split(' ').map(String::from).collect() };
        let args = HarnessArgs::parse_from(&argv("--smoke --seed 9 --scale 0.5"));
        assert_eq!(args.seed, 9);
        assert_eq!(args.scale, 0.5);
        let args = HarnessArgs::parse_from(&argv("--seed 3 --smoke"));
        assert_eq!(args.seed, 3);
        // A trailing flag with no value falls back to the default.
        let args = HarnessArgs::parse_from(&argv("--seed"));
        assert_eq!(args.seed, HarnessArgs::default().seed);
    }

    /// The generated `--help` text must enumerate every shared flag and
    /// every binary-specific flag it is given — a binary that parses a flag
    /// but omits it from its `extra_flags` table is the regression this
    /// guards against (keep the tables next to the parsing code).
    #[test]
    fn usage_text_enumerates_shared_and_extra_flags() {
        let extra: &[FlagHelp] = &[
            ("--tenants", "<n>", "number of tenants"),
            ("--smoke", "", "tiny fixed-seed run"),
        ];
        let text = HarnessArgs::usage("serve_bench", "Streaming benchmark.", extra);
        for (flag, _, desc) in SHARED_FLAGS.iter().chain(extra) {
            assert!(text.contains(flag), "missing flag {flag}:\n{text}");
            assert!(text.contains(desc), "missing description for {flag}");
        }
        assert!(text.contains("--help"));
        assert!(text.contains("serve_bench"));
    }

    /// Dedicated regression test for the valueless-flag alignment fix in
    /// `HarnessArgs::parse_from`: unknown arguments are skipped one at a
    /// time, so a binary's own flags — valueless (`--smoke`) or valued
    /// (`--out x.json`, `--gnn-workers 2`) — can appear anywhere without
    /// shifting a known `--flag value` pair out of alignment.
    #[test]
    fn unknown_flags_never_misalign_known_pairs() {
        let argv = |s: &str| -> Vec<String> { s.split(' ').map(String::from).collect() };
        let defaults = HarnessArgs::default();

        // Unknown valueless flag in every position around known pairs.
        for cmdline in [
            "--smoke --scale 0.4 --epochs 5 --seed 11",
            "--scale 0.4 --smoke --epochs 5 --seed 11",
            "--scale 0.4 --epochs 5 --smoke --seed 11",
            "--scale 0.4 --epochs 5 --seed 11 --smoke",
        ] {
            let args = HarnessArgs::parse_from(&argv(cmdline));
            assert_eq!(args.scale, 0.4, "{cmdline}");
            assert_eq!(args.epochs, 5, "{cmdline}");
            assert_eq!(args.seed, 11, "{cmdline}");
        }

        // Unknown *valued* flags interleaved with known pairs: both the
        // unknown flag and its value are skipped without consuming a known
        // flag's value.
        let args = HarnessArgs::parse_from(&argv(
            "--out BENCH.json --seed 21 --gnn-workers 2 --scale 0.25",
        ));
        assert_eq!(args.seed, 21);
        assert_eq!(args.scale, 0.25);
        assert_eq!(args.epochs, defaults.epochs);

        // A known flag whose "value" is the next flag: the parse must not
        // treat `--seed` as a number, and the following pair still applies.
        let args = HarnessArgs::parse_from(&argv("--scale --seed 13"));
        assert_eq!(args.scale, defaults.scale, "non-numeric value falls back");
        assert_eq!(args.seed, 13);

        // Unparseable values fall back to defaults without derailing later
        // pairs.
        let args = HarnessArgs::parse_from(&argv("--seed banana --epochs 9"));
        assert_eq!(args.seed, defaults.seed);
        assert_eq!(args.epochs, 9);

        // Empty argv is the defaults.
        let args = HarnessArgs::parse_from(&[]);
        assert_eq!(args.seed, defaults.seed);
        assert_eq!(args.scale, defaults.scale);
        assert_eq!(args.epochs, defaults.epochs);
    }
}
