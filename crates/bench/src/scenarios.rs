//! Seeded traffic-scenario generators for `serve_bench --scenario`.
//!
//! Each scenario resamples the dataset's own measurement feed — so every
//! generated event carries a `(src, dst, edge_id)` triple that exists in the
//! graph and has real edge features — but reshapes *which vertices the
//! traffic concentrates on over time*.  That popularity structure is exactly
//! what the `ServeStale` embedding cache is sensitive to: a power-law feed
//! keeps its hot set permanently cached, a flash crowd makes a cold vertex
//! suddenly hot, a diurnal feed swaps the working set wholesale, and a fraud
//! burst hammers one vertex in a tight run.  Timestamps are synthesized on a
//! strictly increasing grid starting above `t_floor`, so the generated feed
//! is always chronologically submittable after warm-up.
//!
//! Generation is fully deterministic in `(scenario, base feed, n, seed)` —
//! the generators draw only from [`TensorRng`] — so bench runs and the CI
//! smoke gate are reproducible.

use std::collections::HashMap;
use tgnn_graph::InteractionEvent;
use tgnn_tensor::TensorRng;

/// A named traffic shape for `serve_bench --scenario`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scenario {
    /// Every base event equally likely: no exploitable locality beyond what
    /// the dataset already has — the cache's floor case.
    Uniform,
    /// Zipf-distributed source popularity (exponent ≈ 1.1): a small hot set
    /// dominates, the cache's best case.
    PowerLaw,
    /// Uniform background, but the middle third of the feed concentrates
    /// 90 % of traffic on a handful of crowd vertices.
    FlashCrowd,
    /// Two vertex communities alternating as the working set in day/night
    /// phases — the cache is repeatedly invalidated by working-set turnover.
    Diurnal,
    /// Uniform background punctuated by short bursts in which one
    /// "fraudster" source fires many interactions back-to-back.
    FraudBurst,
}

impl Scenario {
    /// All scenarios, in the order the bench README documents them.
    pub fn all() -> [Scenario; 5] {
        [
            Scenario::Uniform,
            Scenario::PowerLaw,
            Scenario::FlashCrowd,
            Scenario::Diurnal,
            Scenario::FraudBurst,
        ]
    }

    /// The `--scenario` flag spelling.
    pub fn label(&self) -> &'static str {
        match self {
            Scenario::Uniform => "uniform",
            Scenario::PowerLaw => "powerlaw",
            Scenario::FlashCrowd => "flash-crowd",
            Scenario::Diurnal => "diurnal",
            Scenario::FraudBurst => "fraud-burst",
        }
    }
}

impl std::str::FromStr for Scenario {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Scenario::all()
            .into_iter()
            .find(|k| k.label() == s)
            .ok_or_else(|| {
                format!(
                    "unknown scenario {s:?} (expected one of: {})",
                    Scenario::all().map(|k| k.label()).join(", ")
                )
            })
    }
}

/// Base events bucketed by source vertex, hottest source first — the
/// popularity axis every scenario samples along.
struct Buckets {
    /// `by_src[rank]` = indices into the base feed, one bucket per distinct
    /// source, sorted by descending bucket size (rank 0 is the hottest
    /// source in the *base* feed).
    by_src: Vec<Vec<usize>>,
}

impl Buckets {
    fn new(base: &[InteractionEvent]) -> Self {
        let mut map: HashMap<u32, Vec<usize>> = HashMap::new();
        for (i, e) in base.iter().enumerate() {
            map.entry(e.src).or_default().push(i);
        }
        let mut by_src: Vec<(u32, Vec<usize>)> = map.into_iter().collect();
        // Size-descending, source id as the deterministic tiebreak.
        by_src.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(&b.0)));
        Buckets {
            by_src: by_src.into_iter().map(|(_, v)| v).collect(),
        }
    }

    fn pick(&self, rank: usize, rng: &mut TensorRng) -> usize {
        let bucket = &self.by_src[rank.min(self.by_src.len() - 1)];
        bucket[rng.index(bucket.len())]
    }
}

/// Zipf sampler over `n` ranks with exponent `alpha`: cumulative weights +
/// binary search, the dependency-free standard construction.
struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, alpha: f64) -> Self {
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(alpha);
            cumulative.push(acc);
        }
        Zipf { cumulative }
    }

    fn sample(&self, rng: &mut TensorRng) -> usize {
        let total = *self.cumulative.last().unwrap();
        let u = rng.uniform(0.0, 1.0) as f64 * total;
        self.cumulative.partition_point(|&c| c < u)
    }
}

/// Generates `n` scenario events by resampling `base`, with strictly
/// increasing timestamps starting above `t_floor`.  Deterministic in every
/// argument.  Panics if `base` is empty.
pub fn generate(
    scenario: Scenario,
    base: &[InteractionEvent],
    n: usize,
    t_floor: f64,
    seed: u64,
) -> Vec<InteractionEvent> {
    assert!(
        !base.is_empty(),
        "scenario generation needs a non-empty base feed"
    );
    let mut rng = TensorRng::new(seed ^ 0x5ce4a210);
    let buckets = Buckets::new(base);
    let ranks = buckets.by_src.len();
    let zipf = Zipf::new(ranks, 1.1);
    // Flash crowd: a handful of hot vertices; fraud burst: ~16-event runs.
    let crowd = ranks.min(4);
    let burst_len = 16usize;
    let mut burst_left = 0usize;
    let mut burst_rank = 0usize;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let idx = match scenario {
            Scenario::Uniform => rng.index(base.len()),
            Scenario::PowerLaw => buckets.pick(zipf.sample(&mut rng), &mut rng),
            Scenario::FlashCrowd => {
                let in_crowd_window = i >= n / 3 && i < 2 * n / 3;
                if in_crowd_window && rng.bernoulli(0.9) {
                    buckets.pick(rng.index(crowd), &mut rng)
                } else {
                    rng.index(base.len())
                }
            }
            Scenario::Diurnal => {
                // Four day/night cycles over the feed; each phase draws 90 %
                // of its traffic from its own half of the popularity ranks.
                let phase = (i * 8 / n.max(1)) % 2;
                let day = rng.bernoulli(0.9) == (phase == 0);
                let half = ranks.div_ceil(2);
                let rank = if day {
                    rng.index(half)
                } else {
                    half + rng.index((ranks - half).max(1))
                };
                buckets.pick(rank.min(ranks - 1), &mut rng)
            }
            Scenario::FraudBurst => {
                if burst_left > 0 {
                    burst_left -= 1;
                    buckets.pick(burst_rank, &mut rng)
                } else if rng.bernoulli(1.0 / 64.0) {
                    burst_rank = rng.index(ranks);
                    burst_left = burst_len - 1;
                    buckets.pick(burst_rank, &mut rng)
                } else {
                    rng.index(base.len())
                }
            }
        };
        let mut e = base[idx];
        e.timestamp = t_floor + 1.0 + i as f64;
        out.push(e);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_feed() -> Vec<InteractionEvent> {
        // 8 sources with strongly skewed base frequencies.
        let mut events = Vec::new();
        let mut t = 0.0;
        for round in 0..64u32 {
            for src in 0..8u32 {
                if round % (src + 1) == 0 {
                    events.push(InteractionEvent::new(src, 100 + src, src, t));
                    t += 1.0;
                }
            }
        }
        events
    }

    #[test]
    fn every_scenario_is_chronological_valid_and_deterministic() {
        let base = base_feed();
        let floor = base.last().unwrap().timestamp;
        for scenario in Scenario::all() {
            let a = generate(scenario, &base, 500, floor, 42);
            let b = generate(scenario, &base, 500, floor, 42);
            assert_eq!(a.len(), 500);
            assert_eq!(a, b, "{}: not deterministic", scenario.label());
            let triples: std::collections::HashSet<(u32, u32, u32)> =
                base.iter().map(|e| (e.src, e.dst, e.edge_id)).collect();
            let mut prev = floor;
            for e in &a {
                assert!(
                    e.timestamp > prev,
                    "{}: timestamps must strictly increase",
                    scenario.label()
                );
                prev = e.timestamp;
                assert!(
                    triples.contains(&(e.src, e.dst, e.edge_id)),
                    "{}: generated an event absent from the base feed",
                    scenario.label()
                );
            }
            let c = generate(scenario, &base, 500, floor, 43);
            assert_ne!(a, c, "{}: seed must matter", scenario.label());
        }
    }

    #[test]
    fn powerlaw_concentrates_on_the_hot_ranks() {
        let base = base_feed();
        let events = generate(Scenario::PowerLaw, &base, 4000, 0.0, 7);
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for e in &events {
            *counts.entry(e.src).or_default() += 1;
        }
        let hottest = *counts.values().max().unwrap();
        let coldest = *counts.values().min().unwrap_or(&0);
        assert!(
            hottest > coldest * 3,
            "zipf sampling must skew traffic (hottest {hottest}, coldest {coldest})"
        );
    }

    #[test]
    fn flash_crowd_heats_the_middle_window() {
        let base = base_feed();
        let n = 3000;
        let events = generate(Scenario::FlashCrowd, &base, n, 0.0, 9);
        let crowd_srcs: std::collections::HashSet<u32> = {
            let buckets = Buckets::new(&base);
            buckets.by_src[..4].iter().map(|b| base[b[0]].src).collect()
        };
        let share = |range: std::ops::Range<usize>| {
            let hits = events[range.clone()]
                .iter()
                .filter(|e| crowd_srcs.contains(&e.src))
                .count();
            hits as f64 / range.len() as f64
        };
        let before = share(0..n / 3);
        let during = share(n / 3..2 * n / 3);
        assert!(
            during > before + 0.2,
            "crowd window must concentrate traffic (before {before:.2}, during {during:.2})"
        );
    }
}
