//! CPU / GPU baseline cost models, calibrated on the paper's Table I
//! measurements.
//!
//! Table I reports the execution time per dynamic node embedding of the
//! baseline TGN-attn model on a single CPU thread, 32 CPU threads, and a
//! Titan Xp GPU, broken down by stage.  The models here scale those
//! calibrated per-stage times with the operation counts of the model variant
//! being run (so the +SAT/+LUT/+NP rungs speed up the compute-bound stages
//! but not the fixed overheads), and add the per-batch fixed costs that make
//! small batches inefficient on the GPU — the effect the paper exploits.

use serde::{Deserialize, Serialize};
use tgnn_core::complexity::per_embedding_ops;
use tgnn_core::{ModelConfig, OptimizationVariant};

/// Which baseline platform to model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BaselinePlatform {
    /// A single Xeon Gold 5120 thread.
    CpuSingleThread,
    /// 32 threads across the dual-socket Xeon Gold 5120.
    CpuMultiThread,
    /// Nvidia Titan X(p).
    Gpu,
}

impl BaselinePlatform {
    /// Calibrated per-embedding stage times (sample, memory, GNN, update) in
    /// microseconds for the *baseline* model on the Wikipedia workload.  The
    /// relative split follows Table I; the absolute scale is calibrated so
    /// that the end-to-end throughput matches the measured numbers of
    /// Table II / Fig. 5 (which include the framework overhead of the real
    /// PyTorch runs the paper compares against).
    fn calibrated_stage_micros(&self) -> [f64; 4] {
        match self {
            BaselinePlatform::CpuSingleThread => [9.0, 273.0, 296.0, 23.0],
            BaselinePlatform::CpuMultiThread => [9.0, 40.0, 33.0, 21.0],
            BaselinePlatform::Gpu => [8.0, 8.0, 4.0, 19.0],
        }
    }

    /// Fixed overhead per batch, seconds (framework dispatch, kernel
    /// launches, synchronisation).  This is what makes small batches
    /// disproportionately expensive on the GPU.
    fn per_batch_overhead(&self) -> f64 {
        match self {
            BaselinePlatform::CpuSingleThread => 100e-6,
            BaselinePlatform::CpuMultiThread => 500e-6,
            BaselinePlatform::Gpu => 2e-3,
        }
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            BaselinePlatform::CpuSingleThread => "CPU (1 thread)",
            BaselinePlatform::CpuMultiThread => "CPU (32 threads)",
            BaselinePlatform::Gpu => "GPU",
        }
    }
}

/// Latency/throughput estimate for a batch.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BaselineEstimate {
    /// Latency to process the batch, seconds.
    pub latency: f64,
    /// Throughput, edges per second, at this batch size.
    pub throughput_eps: f64,
    /// Per-stage per-embedding times (sample, memory, GNN, update), µs.
    pub stage_micros: [f64; 4],
}

/// Baseline cost model for a given platform and model configuration.
#[derive(Clone, Debug)]
pub struct BaselineSimulator {
    pub platform: BaselinePlatform,
    pub model: ModelConfig,
}

impl BaselineSimulator {
    /// Creates the simulator.
    pub fn new(platform: BaselinePlatform, model: ModelConfig) -> Self {
        Self { platform, model }
    }

    /// Per-embedding stage times for this model variant, obtained by scaling
    /// the calibrated baseline times with the variant's MAC/MEM reductions.
    pub fn stage_micros(&self) -> [f64; 4] {
        let baseline_cfg = ModelConfig {
            node_feature_dim: self.model.node_feature_dim,
            edge_feature_dim: self.model.edge_feature_dim,
            ..ModelConfig::paper_default(self.model.node_feature_dim, self.model.edge_feature_dim)
        }
        .with_variant(OptimizationVariant::Baseline);
        let base_ops = per_embedding_ops(&baseline_cfg);
        let this_ops = per_embedding_ops(&self.model);
        let calibrated = self.platform.calibrated_stage_micros();

        // sample/update are access-bound; memory and GNN scale with their
        // MAC+MEM workload relative to the baseline model.
        let memory_scale = (this_ops.memory.macs + this_ops.memory.mems) as f64
            / (base_ops.memory.macs + base_ops.memory.mems).max(1) as f64;
        let gnn_scale = (this_ops.gnn.macs + this_ops.gnn.mems) as f64
            / (base_ops.gnn.macs + base_ops.gnn.mems).max(1) as f64;
        // On the CPU the LUT brings no benefit because the table does not fit
        // in registers/on-chip memory (the paper notes exactly this).
        let lut_penalty = if self.model.time_encoder == tgnn_core::TimeEncoderKind::Lut
            && self.platform != BaselinePlatform::Gpu
        {
            1.02
        } else {
            1.0
        };
        [
            calibrated[0],
            calibrated[1] * memory_scale as f64 * lut_penalty,
            calibrated[2] * gnn_scale as f64,
            calibrated[3],
        ]
    }

    /// Estimates latency and throughput for processing one batch of
    /// `batch_size` edges (each edge produces two embeddings).
    pub fn estimate(&self, batch_size: usize) -> BaselineEstimate {
        let stage_micros = self.stage_micros();
        let per_embedding_s: f64 = stage_micros.iter().sum::<f64>() * 1e-6;
        let embeddings = 2.0 * batch_size as f64;
        let latency = self.platform.per_batch_overhead() + embeddings * per_embedding_s;
        BaselineEstimate {
            latency,
            throughput_eps: if latency > 0.0 {
                batch_size as f64 / latency
            } else {
                0.0
            },
            stage_micros,
        }
    }

    /// Throughput over a long stream processed in batches of `batch_size`.
    pub fn stream_throughput(&self, num_edges: usize, batch_size: usize) -> f64 {
        if num_edges == 0 || batch_size == 0 {
            return 0.0;
        }
        let batches = num_edges.div_ceil(batch_size);
        let total: f64 = (0..batches)
            .map(|i| {
                let edges = if i + 1 == batches {
                    num_edges - batch_size * (batches - 1)
                } else {
                    batch_size
                };
                self.estimate(edges).latency
            })
            .sum();
        num_edges as f64 / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(variant: OptimizationVariant) -> ModelConfig {
        ModelConfig::paper_default(0, 172).with_variant(variant)
    }

    #[test]
    fn gpu_beats_cpu_at_large_batches_but_not_tiny_ones() {
        let cpu = BaselineSimulator::new(
            BaselinePlatform::CpuMultiThread,
            cfg(OptimizationVariant::Baseline),
        );
        let gpu = BaselineSimulator::new(BaselinePlatform::Gpu, cfg(OptimizationVariant::Baseline));
        assert!(gpu.estimate(4000).latency < cpu.estimate(4000).latency);
        // At very small batches the GPU's fixed overhead dominates.
        assert!(gpu.estimate(10).latency > cpu.estimate(10).latency);
    }

    #[test]
    fn single_thread_matches_table_i_magnitudes() {
        let sim = BaselineSimulator::new(
            BaselinePlatform::CpuSingleThread,
            cfg(OptimizationVariant::Baseline),
        );
        let stage = sim.stage_micros();
        // ~600 µs per embedding on one thread (≈0.85 kE/s as in Table II),
        // with the GNN stage the largest part as in Table I.
        let total: f64 = stage.iter().sum();
        assert!((400.0..900.0).contains(&total), "total {total} µs");
        assert!(stage[2] > stage[0] && stage[2] > stage[3]);
    }

    #[test]
    fn optimized_models_speed_up_single_thread_as_in_table_ii() {
        let base = BaselineSimulator::new(
            BaselinePlatform::CpuSingleThread,
            cfg(OptimizationVariant::Baseline),
        );
        let np_s = BaselineSimulator::new(
            BaselinePlatform::CpuSingleThread,
            cfg(OptimizationVariant::NpSmall),
        );
        let base_tp = base.stream_throughput(10_000, 200);
        let np_tp = np_s.stream_throughput(10_000, 200);
        let speedup = np_tp / base_tp;
        // Table II reports 2.4–3.8× single-thread speedup for NP(S).  Our
        // calibrated model keeps the (non-shrinking) memory stage on the
        // critical path, so the speedup is compressed but must remain
        // clearly monotone in the same direction.
        assert!(speedup > 1.4 && speedup < 6.0, "speedup {speedup}");
    }

    #[test]
    fn throughput_increases_with_batch_size() {
        let gpu = BaselineSimulator::new(BaselinePlatform::Gpu, cfg(OptimizationVariant::Baseline));
        assert!(gpu.estimate(2000).throughput_eps > gpu.estimate(100).throughput_eps);
    }

    #[test]
    fn stream_throughput_handles_edge_cases() {
        let sim = BaselineSimulator::new(
            BaselinePlatform::CpuSingleThread,
            cfg(OptimizationVariant::Sat),
        );
        assert_eq!(sim.stream_throughput(0, 100), 0.0);
        assert!(sim.stream_throughput(1000, 128) > 0.0);
    }
}
