//! The full accelerator simulation: functional execution identical to the
//! software reference plus timing from the pipeline and Updater models.
//!
//! Functionally, the accelerator runs Algorithm 1 exactly like the software
//! [`tgnn_core::InferenceEngine`] (the hardware changes *where* work happens,
//! not *what* is computed), so the simulator wraps that engine for the
//! numerical results and drives the timing models with the per-batch
//! workload it actually observed (how many vertices had pending messages,
//! how many neighbors were fetched after pruning, how many redundant updates
//! the Updater squashed).

use crate::ddr::DdrModel;
use crate::design::DesignConfig;
use crate::device::FpgaDevice;
use crate::pipeline::{BatchWorkload, PipelineModel};
use crate::updater::Updater;
use serde::{Deserialize, Serialize};
use tgnn_core::{InferenceEngine, TgnModel};
use tgnn_graph::{EventBatch, InteractionEvent, TemporalGraph};

/// Timing result of one user-visible batch.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimulatedBatch {
    /// Number of edges in the batch.
    pub edges: usize,
    /// Number of embeddings produced.
    pub embeddings: usize,
    /// Simulated latency on the accelerator, seconds.
    pub latency: f64,
    /// Redundant vertex writes eliminated by the Updater.
    pub redundant_writes_eliminated: usize,
}

/// Aggregate report over a simulated stream (the series plotted in Fig. 5/6).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimulatedStreamReport {
    pub device: String,
    pub design: String,
    pub num_events: usize,
    pub num_embeddings: usize,
    pub batches: Vec<SimulatedBatch>,
    /// Total simulated execution time, seconds.
    pub total_time: f64,
}

impl SimulatedStreamReport {
    /// Throughput in edges per second (Eq. 3) under the simulated timing.
    pub fn throughput_eps(&self) -> f64 {
        if self.total_time > 0.0 {
            self.num_events as f64 / self.total_time
        } else {
            0.0
        }
    }

    /// Mean simulated batch latency, seconds.
    pub fn mean_latency(&self) -> f64 {
        if self.batches.is_empty() {
            0.0
        } else {
            self.batches.iter().map(|b| b.latency).sum::<f64>() / self.batches.len() as f64
        }
    }
}

/// The accelerator simulator.
pub struct AcceleratorSim {
    engine: InferenceEngine,
    pipeline: PipelineModel,
    device: FpgaDevice,
    design: DesignConfig,
}

impl AcceleratorSim {
    /// Builds a simulator for a model deployed on a device with a design
    /// configuration.
    ///
    /// # Panics
    /// Panics if the design configuration is invalid.
    pub fn new(
        model: TgnModel,
        num_nodes: usize,
        device: FpgaDevice,
        design: DesignConfig,
    ) -> Self {
        design
            .validate()
            .unwrap_or_else(|e| panic!("invalid DesignConfig: {e}"));
        let ddr = DdrModel::new_gbps(device.ddr_bandwidth_gbps);
        let pipeline = PipelineModel::new(design.clone(), model.config.clone(), ddr);
        let engine = InferenceEngine::new(model, num_nodes);
        Self {
            engine,
            pipeline,
            device,
            design,
        }
    }

    /// Access to the wrapped functional engine (e.g. to inspect embeddings or
    /// the commit log).
    pub fn engine(&self) -> &InferenceEngine {
        &self.engine
    }

    /// Warm-up on a chronological prefix (no timing recorded).
    pub fn warm_up(&mut self, events: &[InteractionEvent], graph: &TemporalGraph) {
        self.engine.warm_up(events, graph);
    }

    /// Processes one user-visible batch: functional results from the
    /// reference engine, timing from the pipeline + Updater models.
    pub fn process_batch(&mut self, batch: &EventBatch, graph: &TemporalGraph) -> SimulatedBatch {
        if batch.is_empty() {
            return SimulatedBatch {
                edges: 0,
                embeddings: 0,
                latency: 0.0,
                redundant_writes_eliminated: 0,
            };
        }
        let ops_before = self.engine.ops();
        let out = self.engine.process_batch(batch, graph);
        let ops_after = self.engine.ops();

        // Derive the observed workload of this batch from the engine's
        // counters and outputs.
        let cfg = &self.pipeline.model;
        let gnn_mem_delta = ops_after.gnn.mems - ops_before.gnn.mems;
        let per_neighbor_words = (cfg.memory_dim + cfg.edge_feature_dim).max(1) as u64;
        let neighbors_fetched = (gnn_mem_delta / per_neighbor_words) as usize;
        let memory_updates = ((ops_after.memory.mems - ops_before.memory.mems)
            / (cfg.message_dim() + cfg.memory_dim).max(1) as u64)
            as usize;
        let workload = BatchWorkload {
            edges: batch.len(),
            memory_updates,
            embeddings: out.embeddings.len(),
            neighbors_fetched,
            neighbors_scored: out.embeddings.len() * cfg.sampled_neighbors,
        };

        // Updater simulation: edges are assigned to CUs round-robin; each
        // edge produces two vertex updates.
        let mut updater = Updater::new(
            (4 * self.design.num_cu).max(8),
            self.design.num_cu,
            3,
            self.design.redundant_write_elimination,
        );
        for (i, e) in batch.events().iter().enumerate() {
            let cu = i % self.design.num_cu;
            updater.receive(cu, e.src, e.timestamp, cfg.memory_dim + cfg.message_dim());
            updater.receive(cu, e.dst, e.timestamp, cfg.memory_dim + cfg.message_dim());
            if i % 2 == 1 {
                updater.commit_cycle();
            }
        }
        updater.drain();
        debug_assert!(updater.verify_chronological());

        let workloads = self.pipeline.split_workload(&workload);
        let mut latency = self.pipeline.batch_latency(&workloads);
        // Updater drain cycles add to the tail latency.
        latency += updater.stats().scan_cycles as f64 * self.design.clock_period();

        SimulatedBatch {
            edges: batch.len(),
            embeddings: out.embeddings.len(),
            latency,
            redundant_writes_eliminated: updater.stats().invalidated,
        }
    }

    /// Simulates a full stream split into fixed-size batches.
    pub fn simulate_stream(
        &mut self,
        events: &[InteractionEvent],
        graph: &TemporalGraph,
        batch_size: usize,
    ) -> SimulatedStreamReport {
        let batches = tgnn_graph::batching::fixed_size_batches(events, batch_size);
        self.simulate_batches(&batches, graph)
    }

    /// Simulates an explicit batch sequence (e.g. 15-minute windows).
    pub fn simulate_batches(
        &mut self,
        batches: &[EventBatch],
        graph: &TemporalGraph,
    ) -> SimulatedStreamReport {
        let mut results = Vec::with_capacity(batches.len());
        let mut total_time = 0.0;
        let mut events = 0;
        let mut embeddings = 0;
        for batch in batches {
            let sim = self.process_batch(batch, graph);
            total_time += sim.latency;
            events += sim.edges;
            embeddings += sim.embeddings;
            results.push(sim);
        }
        SimulatedStreamReport {
            device: self.device.name.clone(),
            design: self.design.name.clone(),
            num_events: events,
            num_embeddings: embeddings,
            batches: results,
            total_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgnn_core::{ModelConfig, OptimizationVariant};
    use tgnn_data::{generate, tiny};
    use tgnn_tensor::TensorRng;

    fn build(
        variant: OptimizationVariant,
        design: DesignConfig,
        device: FpgaDevice,
    ) -> (AcceleratorSim, TemporalGraph) {
        let graph = generate(&tiny(91));
        let cfg = ModelConfig::tiny(graph.node_feature_dim(), graph.edge_feature_dim())
            .with_variant(variant);
        let mut rng = TensorRng::new(1);
        let mut model = TgnModel::new(cfg, &mut rng);
        if model.config.time_encoder == tgnn_core::TimeEncoderKind::Lut {
            let deltas = tgnn_data::delta_t::memory_delta_t(graph.events(), graph.num_nodes());
            model.calibrate_lut(&deltas);
        }
        (
            AcceleratorSim::new(model, graph.num_nodes(), device, design),
            graph,
        )
    }

    #[test]
    fn functional_results_match_reference_engine() {
        let graph = generate(&tiny(91));
        let cfg = ModelConfig::tiny(graph.node_feature_dim(), graph.edge_feature_dim());
        let mut rng = TensorRng::new(5);
        let model = TgnModel::new(cfg, &mut rng);

        let mut reference = InferenceEngine::new(model.clone(), graph.num_nodes());
        let mut sim = AcceleratorSim::new(
            model,
            graph.num_nodes(),
            FpgaDevice::alveo_u200(),
            DesignConfig::u200(),
        );

        let batch = EventBatch::new(graph.events()[..40].to_vec());
        let ref_out = reference.process_batch(&batch, &graph);
        let _ = sim.process_batch(&batch, &graph);
        // The wrapped engine inside the simulator saw the identical stream,
        // so its vertex memory must match the reference bit for bit.
        for v in batch.touched_vertices() {
            assert_eq!(
                sim.engine().memory().memory_of(v),
                reference.memory().memory_of(v),
                "memory diverged for vertex {v}"
            );
        }
        assert_eq!(
            ref_out.embeddings.len(),
            sim.engine().embeddings_generated()
        );
    }

    #[test]
    fn u200_is_faster_than_zcu104_in_simulation() {
        let (mut u200, graph) = build(
            OptimizationVariant::NpMedium,
            DesignConfig::u200(),
            FpgaDevice::alveo_u200(),
        );
        let (mut zcu, _) = build(
            OptimizationVariant::NpMedium,
            DesignConfig::zcu104(),
            FpgaDevice::zcu104(),
        );
        let events = &graph.events()[..400];
        let rep_u = u200.simulate_stream(events, &graph, 100);
        let rep_z = zcu.simulate_stream(events, &graph, 100);
        assert!(rep_u.throughput_eps() > rep_z.throughput_eps());
        assert!(rep_u.mean_latency() < rep_z.mean_latency());
        assert_eq!(rep_u.num_events, 400);
        assert_eq!(rep_u.batches.len(), 4);
    }

    #[test]
    fn pruned_models_are_faster_on_the_same_hardware() {
        let (mut full, graph) = build(
            OptimizationVariant::SatLut,
            DesignConfig::u200(),
            FpgaDevice::alveo_u200(),
        );
        let (mut pruned, _) = build(
            OptimizationVariant::NpSmall,
            DesignConfig::u200(),
            FpgaDevice::alveo_u200(),
        );
        let events = &graph.events()[..400];
        let rep_full = full.simulate_stream(events, &graph, 100);
        let rep_pruned = pruned.simulate_stream(events, &graph, 100);
        assert!(rep_pruned.total_time < rep_full.total_time);
    }

    #[test]
    fn updater_eliminates_redundant_writes_for_repeated_vertices() {
        let (mut sim, graph) = build(
            OptimizationVariant::NpMedium,
            DesignConfig::u200(),
            FpgaDevice::alveo_u200(),
        );
        // Large batch on a small graph → many repeated vertices per batch.
        let batch = EventBatch::new(graph.events()[..200].to_vec());
        let out = sim.process_batch(&batch, &graph);
        assert!(out.redundant_writes_eliminated > 0);
        assert!(out.latency > 0.0);
    }

    #[test]
    fn empty_batch_costs_nothing() {
        let (mut sim, graph) = build(
            OptimizationVariant::Sat,
            DesignConfig::zcu104(),
            FpgaDevice::zcu104(),
        );
        let out = sim.process_batch(&EventBatch::empty(), &graph);
        assert_eq!(out.latency, 0.0);
        assert_eq!(out.edges, 0);
    }
}
