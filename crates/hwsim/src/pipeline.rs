//! The 9-stage task schedule of Fig. 4 and its pipelined execution.
//!
//! A processing batch of `N_b` edges passes through: (1) load edges,
//! (2) load neighbors / vertex memory / mail, (3) prefetch neighbor
//! memories, (4) update neighbors / memory / mail, (5) update embeddings,
//! (6.1–6.5) the MUU sub-stages (time encoding, update/reset/memory/merging
//! gates) and (7.1–7.4) the EU sub-stages (attention, time encoding, feature
//! aggregation, feature transformation).  Consecutive processing batches are
//! fully pipelined, so the steady-state cost of a batch is the longest stage
//! (`T_p`), with the full pipeline depth paid once per user-visible batch.
//!
//! The simulator works at stage-time granularity: each stage's duration is
//! derived from cycle counts (compute stages) or from the DDR model (memory
//! stages), using the *actual* per-batch workload (how many vertices had
//! pending messages, how many neighbors were fetched after pruning), which is
//! what distinguishes it from the closed-form model of Section V.

use crate::ddr::DdrModel;
use crate::design::DesignConfig;
use serde::{Deserialize, Serialize};
use tgnn_core::{AttentionKind, ModelConfig, TimeEncoderKind};

/// Workload of one processing batch (measured by the functional engine).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct BatchWorkload {
    /// Edges in the processing batch.
    pub edges: usize,
    /// Vertices whose memory is updated (had a pending message).
    pub memory_updates: usize,
    /// Vertices for which embeddings are produced.
    pub embeddings: usize,
    /// Total neighbor-feature fetches (after pruning).
    pub neighbors_fetched: usize,
    /// Total candidate neighbors scored (before pruning).
    pub neighbors_scored: usize,
}

/// Per-stage time breakdown of one processing batch, seconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StageBreakdown {
    pub load_edges: f64,
    pub load_vertex_state: f64,
    pub prefetch_neighbors: f64,
    pub muu_time_encoding: f64,
    pub muu_gates: f64,
    pub eu_attention: f64,
    pub eu_time_encoding: f64,
    pub eu_aggregation: f64,
    pub eu_transformation: f64,
    pub write_back: f64,
}

impl StageBreakdown {
    /// The longest stage — the pipeline period `T_p` contribution of this
    /// batch.
    pub fn max_stage(&self) -> f64 {
        [
            self.load_edges,
            self.load_vertex_state,
            self.prefetch_neighbors,
            self.muu_time_encoding,
            self.muu_gates,
            self.eu_attention,
            self.eu_time_encoding,
            self.eu_aggregation,
            self.eu_transformation,
            self.write_back,
        ]
        .into_iter()
        .fold(0.0, f64::max)
    }

    /// Sum of all stages — the unpipelined latency of this batch.
    pub fn total(&self) -> f64 {
        self.load_edges
            + self.load_vertex_state
            + self.prefetch_neighbors
            + self.muu_time_encoding
            + self.muu_gates
            + self.eu_attention
            + self.eu_time_encoding
            + self.eu_aggregation
            + self.eu_transformation
            + self.write_back
    }
}

/// The pipeline timing model.
#[derive(Clone, Debug)]
pub struct PipelineModel {
    pub design: DesignConfig,
    pub model: ModelConfig,
    pub ddr: DdrModel,
}

impl PipelineModel {
    /// Creates a pipeline model.
    pub fn new(design: DesignConfig, model: ModelConfig, ddr: DdrModel) -> Self {
        Self { design, model, ddr }
    }

    /// Stage breakdown for one processing batch with the given measured
    /// workload.
    pub fn stage_breakdown(&self, w: &BatchWorkload) -> StageBreakdown {
        let d = &self.design;
        let m = &self.model;
        let clk = d.clock_period();
        // Everything the pipeline moves over DDR per batch (memory rows,
        // features, messages, embeddings) is activation-width data; the
        // datapath precision sets the bytes per word, so an int8 design
        // quarters every transfer below relative to fp32.
        let word = d.precision.activation_bytes;

        let msg = m.message_dim() as f64;
        let mem = m.memory_dim as f64;
        let efeat = m.edge_feature_dim as f64;
        let nfeat = m.node_feature_dim as f64;
        let emb = m.embedding_dim as f64;
        let time = m.time_dim as f64;

        // --- memory stages (DDR model).
        let edge_bytes = w.edges as f64 * (2.0 + 1.0 + efeat) * word;
        let vertex_state_bytes =
            w.embeddings as f64 * (msg + mem + m.sampled_neighbors as f64 * 3.0) * word;
        let neighbor_bytes =
            w.neighbors_fetched as f64 * (mem + efeat) * word + w.embeddings as f64 * nfeat * word;
        let write_bytes = w.memory_updates as f64 * mem * word
            + w.edges as f64 * 2.0 * msg * word
            + w.embeddings as f64 * emb * word;

        let load_edges = self.ddr.transfer_time(edge_bytes, (efeat.max(4.0)) * word);
        let load_vertex_state = self.ddr.transfer_time(vertex_state_bytes, msg * word);
        let mut prefetch_neighbors = self.ddr.transfer_time(neighbor_bytes, (mem + efeat) * word);
        let write_back = self.ddr.transfer_time(write_bytes, mem * word);

        // --- compute stages (cycle counts / parallelism / frequency).
        let cu = d.num_cu as f64;
        let muu_time_encoding = match m.time_encoder {
            // One LUT read per update: a single cycle each.
            TimeEncoderKind::Lut => w.memory_updates as f64 * clk / cu,
            TimeEncoderKind::Cos => w.memory_updates as f64 * time * clk / cu,
        };
        let muu_gates = w.memory_updates as f64 * 3.0 * msg * mem / (d.sg * d.sg) as f64 * clk / cu;

        let eu_attention = match m.attention {
            AttentionKind::Vanilla => {
                // q·K dot products plus the key/query projections.
                w.neighbors_scored as f64 * (m.neighbor_input_dim() as f64 * mem + mem)
                    / d.s_fam as f64
                    * clk
                    / cu
            }
            AttentionKind::Simplified => {
                // The tiny W_t·Δt product per embedding.
                w.embeddings as f64 * (m.sampled_neighbors * m.sampled_neighbors) as f64
                    / d.s_fam as f64
                    * clk
                    / cu
            }
        };
        let eu_time_encoding = match m.time_encoder {
            TimeEncoderKind::Lut => w.neighbors_fetched as f64 * clk / cu,
            TimeEncoderKind::Cos => w.neighbors_fetched as f64 * time * clk / cu,
        };
        let eu_aggregation =
            w.neighbors_fetched as f64 * m.neighbor_input_dim() as f64 * mem / d.s_fam as f64 / 8.0
                * clk
                / cu;
        let eu_transformation =
            w.embeddings as f64 * 2.0 * mem * emb / (d.s_ftm * d.s_ftm) as f64 * clk / cu;

        // Prefetching (Section IV-C) overlaps the neighbor-memory loads with
        // the MUU computation: only the non-overlapped part remains on the
        // critical path.
        if d.prefetch {
            let overlap = muu_gates + muu_time_encoding;
            prefetch_neighbors = (prefetch_neighbors - overlap).max(0.0);
        }

        StageBreakdown {
            load_edges,
            load_vertex_state,
            prefetch_neighbors,
            muu_time_encoding,
            muu_gates,
            eu_attention,
            eu_time_encoding,
            eu_aggregation,
            eu_transformation,
            write_back,
        }
    }

    /// Simulated latency of one user-visible batch made of several processing
    /// batches (fully pipelined): the pipeline fills once and then advances
    /// one processing batch per period.
    pub fn batch_latency(&self, workloads: &[BatchWorkload]) -> f64 {
        if workloads.is_empty() {
            return 0.0;
        }
        let breakdowns: Vec<StageBreakdown> =
            workloads.iter().map(|w| self.stage_breakdown(w)).collect();
        // Fill latency of the first processing batch plus one period per
        // subsequent batch (each period bounded by that batch's slowest
        // stage — a conservative dynamic version of Eq. 22).
        let fill = breakdowns[0].total();
        let steady: f64 = breakdowns[1..].iter().map(|b| b.max_stage()).sum();
        fill + steady
    }

    /// Splits a user batch of `edges` into processing batches of `N_b` and
    /// produces per-processing-batch workloads assuming the given average
    /// statistics (used when only aggregate workload numbers are available).
    pub fn split_workload(&self, total: &BatchWorkload) -> Vec<BatchWorkload> {
        let nb = self.design.nb.max(1);
        if total.edges == 0 {
            return Vec::new();
        }
        let chunks = total.edges.div_ceil(nb);
        (0..chunks)
            .map(|i| {
                let edges = if i + 1 == chunks {
                    total.edges - nb * (chunks - 1)
                } else {
                    nb
                };
                let scale = edges as f64 / total.edges as f64;
                BatchWorkload {
                    edges,
                    memory_updates: (total.memory_updates as f64 * scale).round() as usize,
                    embeddings: (total.embeddings as f64 * scale).round() as usize,
                    neighbors_fetched: (total.neighbors_fetched as f64 * scale).round() as usize,
                    neighbors_scored: (total.neighbors_scored as f64 * scale).round() as usize,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::FpgaDevice;
    use tgnn_core::OptimizationVariant;

    fn workload(edges: usize, model: &ModelConfig) -> BatchWorkload {
        BatchWorkload {
            edges,
            memory_updates: edges * 2,
            embeddings: edges * 2,
            neighbors_fetched: edges * 2 * model.neighbor_budget,
            neighbors_scored: edges * 2 * model.sampled_neighbors,
        }
    }

    fn pipeline(variant: OptimizationVariant, design: DesignConfig, gbps: f64) -> PipelineModel {
        PipelineModel::new(
            design,
            ModelConfig::paper_default(0, 172).with_variant(variant),
            DdrModel::new_gbps(gbps),
        )
    }

    #[test]
    fn stage_breakdown_is_positive_and_bounded() {
        let p = pipeline(OptimizationVariant::NpMedium, DesignConfig::u200(), 77.0);
        let w = workload(8, &p.model);
        let b = p.stage_breakdown(&w);
        assert!(b.total() > 0.0);
        assert!(b.max_stage() <= b.total());
        assert!(b.max_stage() > 0.0);
    }

    #[test]
    fn simplified_attention_shrinks_the_attention_stage() {
        let vanilla = pipeline(OptimizationVariant::Baseline, DesignConfig::u200(), 77.0);
        let sat = pipeline(OptimizationVariant::Sat, DesignConfig::u200(), 77.0);
        let wv = workload(8, &vanilla.model);
        let ws = workload(8, &sat.model);
        let bv = vanilla.stage_breakdown(&wv);
        let bs = sat.stage_breakdown(&ws);
        assert!(
            bs.eu_attention < 0.2 * bv.eu_attention,
            "SAT attention stage {} vs vanilla {}",
            bs.eu_attention,
            bv.eu_attention
        );
    }

    #[test]
    fn lut_time_encoder_removes_time_encoding_cycles() {
        let cos = pipeline(OptimizationVariant::Sat, DesignConfig::u200(), 77.0);
        let lut = pipeline(OptimizationVariant::SatLut, DesignConfig::u200(), 77.0);
        let wc = workload(8, &cos.model);
        let wl = workload(8, &lut.model);
        assert!(
            lut.stage_breakdown(&wl).eu_time_encoding < cos.stage_breakdown(&wc).eu_time_encoding
        );
        assert!(
            lut.stage_breakdown(&wl).muu_time_encoding < cos.stage_breakdown(&wc).muu_time_encoding
        );
    }

    #[test]
    fn prefetching_hides_neighbor_loads() {
        let mut design = DesignConfig::u200();
        design.prefetch = false;
        let without = pipeline(OptimizationVariant::NpMedium, design, 77.0);
        let with = pipeline(OptimizationVariant::NpMedium, DesignConfig::u200(), 77.0);
        let w = workload(8, &with.model);
        let b_without = without.stage_breakdown(&w);
        let b_with = with.stage_breakdown(&w);
        assert!(b_with.prefetch_neighbors <= b_without.prefetch_neighbors);
    }

    #[test]
    fn pipelining_beats_sequential_execution() {
        let p = pipeline(OptimizationVariant::NpMedium, DesignConfig::u200(), 77.0);
        let total = workload(256, &p.model);
        let workloads = p.split_workload(&total);
        assert!(workloads.len() > 1);
        let pipelined = p.batch_latency(&workloads);
        let sequential: f64 = workloads.iter().map(|w| p.stage_breakdown(w).total()).sum();
        assert!(
            pipelined < sequential,
            "pipelining must help: {pipelined} vs {sequential}"
        );
    }

    #[test]
    fn split_workload_conserves_edges() {
        let p = pipeline(OptimizationVariant::NpSmall, DesignConfig::zcu104(), 19.2);
        let total = workload(103, &p.model);
        let parts = p.split_workload(&total);
        let edges: usize = parts.iter().map(|w| w.edges).sum();
        assert_eq!(edges, 103);
        assert!(parts.iter().all(|w| w.edges <= p.design.nb));
        assert!(p.split_workload(&BatchWorkload::default()).is_empty());
    }

    #[test]
    fn int8_datapath_shrinks_every_memory_stage() {
        use crate::design::DatapathPrecision;
        let fp32 = pipeline(OptimizationVariant::NpMedium, DesignConfig::u200(), 77.0);
        let int8 = pipeline(
            OptimizationVariant::NpMedium,
            DesignConfig::u200().with_precision(DatapathPrecision::int8()),
            77.0,
        );
        let w = workload(64, &fp32.model);
        let bf = fp32.stage_breakdown(&w);
        let bi = int8.stage_breakdown(&w);
        assert!(bi.load_edges < bf.load_edges);
        assert!(bi.load_vertex_state < bf.load_vertex_state);
        assert!(bi.write_back < bf.write_back);
        assert!(bi.prefetch_neighbors <= bf.prefetch_neighbors);
        // Compute stages are cycle-count driven and unchanged.
        assert_eq!(bi.muu_gates, bf.muu_gates);
        assert_eq!(bi.eu_transformation, bf.eu_transformation);
        // The end-to-end batch cannot get slower.
        let lat_f = fp32.batch_latency(&fp32.split_workload(&w));
        let lat_i = int8.batch_latency(&int8.split_workload(&w));
        assert!(lat_i <= lat_f, "int8 latency {lat_i} vs fp32 {lat_f}");
    }

    #[test]
    fn zcu104_is_slower_than_u200() {
        let u200 = pipeline(
            OptimizationVariant::NpMedium,
            DesignConfig::u200(),
            FpgaDevice::alveo_u200().ddr_bandwidth_gbps,
        );
        let zcu = pipeline(
            OptimizationVariant::NpMedium,
            DesignConfig::zcu104(),
            FpgaDevice::zcu104().ddr_bandwidth_gbps,
        );
        let total_u = workload(200, &u200.model);
        let total_z = workload(200, &zcu.model);
        let lat_u = u200.batch_latency(&u200.split_workload(&total_u));
        let lat_z = zcu.batch_latency(&zcu.split_workload(&total_z));
        assert!(lat_u < lat_z);
    }
}
