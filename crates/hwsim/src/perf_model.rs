//! The analytical performance model of Section V (Eq. 18–22).
//!
//! For a processing batch of `N_b` edges the pipeline period is
//! `T_p = max(T_comp_max, T_LS)` where `T_comp_max` is the slowest
//! computation stage (Eq. 20) and `T_LS` the time to load/store the batch's
//! data from/to external memory (Eq. 21).  Throughput and latency then follow
//! from Eq. 22.

use crate::ddr::DdrModel;
use crate::design::DesignConfig;
use crate::pipeline::{BatchWorkload, PipelineModel, StageBreakdown};
use serde::{Deserialize, Serialize};
use tgnn_core::ModelConfig;

/// Bytes per data word of the paper's fp32 implementation.  The byte width
/// actually used by the model comes from
/// [`DesignConfig::precision`](crate::design::DatapathPrecision) — this
/// constant remains as the fp32 reference value.
pub const BYTES_PER_WORD: f64 = 4.0;

/// Number of pipeline stages β in the task schedule of Fig. 4.
pub const PIPELINE_STAGES: usize = 9;

/// Closed-form performance prediction for one design/model/memory
/// combination.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PerformanceModel {
    pub design: DesignConfig,
    pub model: ModelConfig,
    pub ddr: DdrModel,
}

/// Predicted quantities for a given batch size.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Pipeline period `T_p`, seconds.
    pub pipeline_period: f64,
    /// Slowest computation stage `T_comp_max`, seconds.
    pub t_comp: f64,
    /// Load/store time `T_LS`, seconds.
    pub t_ls: f64,
    /// Maximum throughput, edges per second.
    pub throughput_eps: f64,
    /// Latency to process a batch of `N` edges, seconds.
    pub latency: f64,
}

impl PerformanceModel {
    /// Creates the model.
    pub fn new(design: DesignConfig, model: ModelConfig, ddr: DdrModel) -> Self {
        Self { design, model, ddr }
    }

    /// The nominal workload of one processing batch of `N_b` edges: every
    /// edge updates its two endpoints, every endpoint produces an embedding,
    /// and every embedding aggregates the full pruning budget of neighbors.
    /// The real stream deviates from this (vertices repeat within a batch,
    /// young vertices have fewer neighbors than the budget), which is exactly
    /// the source of prediction error the paper discusses.
    fn nominal_workload(&self) -> BatchWorkload {
        let nb = self.design.nb;
        BatchWorkload {
            edges: nb,
            memory_updates: 2 * nb,
            embeddings: 2 * nb,
            neighbors_fetched: 2 * nb * self.model.neighbor_budget,
            neighbors_scored: 2 * nb * self.model.sampled_neighbors,
        }
    }

    fn nominal_breakdown(&self) -> StageBreakdown {
        PipelineModel::new(self.design.clone(), self.model.clone(), self.ddr.clone())
            .stage_breakdown(&self.nominal_workload())
    }

    /// `T_comp_max` (Eq. 20): the dominant computation stage for one
    /// processing batch of `N_b` edges, in seconds, evaluated at the nominal
    /// workload using the same per-stage cost model as the simulator.
    pub fn t_comp(&self) -> f64 {
        let b = self.nominal_breakdown();
        [
            b.muu_time_encoding,
            b.muu_gates,
            b.eu_attention,
            b.eu_time_encoding,
            b.eu_aggregation,
            b.eu_transformation,
        ]
        .into_iter()
        .fold(0.0, f64::max)
    }

    /// `T_LS` (Eq. 21): external-memory time for one processing batch at the
    /// nominal workload.
    pub fn t_ls(&self) -> f64 {
        let b = self.nominal_breakdown();
        b.load_edges + b.load_vertex_state + b.prefetch_neighbors + b.write_back
    }

    /// Full prediction for a batch of `batch_size` edges (Eq. 18 and 22).
    pub fn predict(&self, batch_size: usize) -> Prediction {
        let t_comp = self.t_comp();
        let t_ls = self.t_ls();
        let tp = t_comp.max(t_ls);
        let nb = self.design.nb;
        let steps = (batch_size as f64 / nb as f64).ceil();
        Prediction {
            pipeline_period: tp,
            t_comp,
            t_ls,
            throughput_eps: nb as f64 / tp,
            latency: (PIPELINE_STAGES as f64 - 1.0 + steps) * tp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::FpgaDevice;
    use tgnn_core::OptimizationVariant;

    fn model_cfg(variant: OptimizationVariant) -> ModelConfig {
        ModelConfig::paper_default(0, 172).with_variant(variant)
    }

    fn u200_model(variant: OptimizationVariant) -> PerformanceModel {
        PerformanceModel::new(
            DesignConfig::u200(),
            model_cfg(variant),
            DdrModel::new_gbps(FpgaDevice::alveo_u200().ddr_bandwidth_gbps),
        )
    }

    fn zcu_model(variant: OptimizationVariant) -> PerformanceModel {
        PerformanceModel::new(
            DesignConfig::zcu104(),
            model_cfg(variant),
            DdrModel::new_gbps(FpgaDevice::zcu104().ddr_bandwidth_gbps),
        )
    }

    #[test]
    fn latency_grows_with_batch_size_and_throughput_is_constant() {
        let pm = u200_model(OptimizationVariant::NpMedium);
        let small = pm.predict(100);
        let large = pm.predict(4000);
        assert!(large.latency > small.latency);
        assert!((large.throughput_eps - small.throughput_eps).abs() < 1e-6);
        assert!(small.latency > 0.0);
    }

    #[test]
    fn u200_outperforms_zcu104() {
        let u200 = u200_model(OptimizationVariant::NpMedium).predict(1000);
        let zcu = zcu_model(OptimizationVariant::NpMedium).predict(1000);
        assert!(u200.throughput_eps > zcu.throughput_eps);
        assert!(u200.latency < zcu.latency);
    }

    #[test]
    fn pruning_improves_predicted_performance() {
        let full = u200_model(OptimizationVariant::SatLut).predict(1000);
        let pruned = u200_model(OptimizationVariant::NpSmall).predict(1000);
        assert!(pruned.throughput_eps >= full.throughput_eps);
        assert!(pruned.latency <= full.latency);
    }

    #[test]
    fn pipeline_period_is_max_of_compute_and_memory() {
        let pm = u200_model(OptimizationVariant::NpMedium);
        let p = pm.predict(500);
        assert!((p.pipeline_period - p.t_comp.max(p.t_ls)).abs() < 1e-15);
        assert!(p.t_comp > 0.0 && p.t_ls > 0.0);
    }

    #[test]
    fn higher_bandwidth_never_hurts() {
        let slow = PerformanceModel::new(
            DesignConfig::u200(),
            model_cfg(OptimizationVariant::NpMedium),
            DdrModel::new_gbps(10.0),
        );
        let fast = PerformanceModel::new(
            DesignConfig::u200(),
            model_cfg(OptimizationVariant::NpMedium),
            DdrModel::new_gbps(77.0),
        );
        assert!(fast.predict(1000).latency <= slow.predict(1000).latency);
    }

    #[test]
    fn more_parallelism_reduces_compute_time() {
        let base = zcu_model(OptimizationVariant::NpMedium);
        let mut bigger_design = DesignConfig::zcu104();
        bigger_design.sg *= 2;
        bigger_design.s_fam *= 2;
        bigger_design.s_ftm *= 2;
        let bigger = PerformanceModel::new(
            bigger_design,
            model_cfg(OptimizationVariant::NpMedium),
            DdrModel::new_gbps(19.2),
        );
        assert!(bigger.t_comp() < base.t_comp());
    }

    #[test]
    fn int8_datapath_reduces_t_ls_and_never_reduces_throughput() {
        use crate::design::DatapathPrecision;
        let fp32 = u200_model(OptimizationVariant::NpMedium);
        let int8 = PerformanceModel::new(
            DesignConfig::u200().with_precision(DatapathPrecision::int8()),
            model_cfg(OptimizationVariant::NpMedium),
            DdrModel::new_gbps(FpgaDevice::alveo_u200().ddr_bandwidth_gbps),
        );
        assert!(int8.t_ls() < fp32.t_ls(), "int8 must cut DDR time");
        let pf = fp32.predict(1000);
        let pi = int8.predict(1000);
        assert!(pi.throughput_eps >= pf.throughput_eps);
        assert!(pi.latency <= pf.latency);
    }

    #[test]
    fn paper_scale_latency_is_sub_100ms_for_small_batches() {
        // Fig. 5 / Fig. 7: U200 latencies for batch size 200 are in the
        // millisecond range.  The model should land in the same regime
        // (well under 100 ms, well above 1 µs).
        let pm = u200_model(OptimizationVariant::NpMedium);
        let p = pm.predict(200);
        assert!(p.latency < 0.1, "latency {} s too large", p.latency);
        assert!(
            p.latency > 1e-6,
            "latency {} s implausibly small",
            p.latency
        );
    }
}
