//! The Updater: a fully-associative cache with rotating pointers (Fig. 3).
//!
//! Its jobs (Section IV-B): receive updated vertex information from the CUs
//! in round-robin order, write it back to external memory, guarantee the
//! chronological order of the committed updates, and eliminate redundant
//! writes (an uncommitted cache line for the same vertex is invalidated when
//! a newer update arrives).
//!
//! The simulation here is functional + cycle-counting: it reproduces the
//! commit order and the redundant-write elimination, and reports how many
//! cache lines the commit pointer scanned and how many external writes were
//! issued, which the pipeline model converts into time.

use serde::{Deserialize, Serialize};
use tgnn_graph::NodeId;

/// One cache line of the Updater.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct CacheLine {
    valid: bool,
    vertex: NodeId,
    /// Timestamp carried with the update (used only for verification).
    timestamp: f64,
    /// Payload size in words (memory + message + neighbor entry).
    words: usize,
}

/// Statistics of an Updater run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdaterStats {
    /// Updates received from the CUs.
    pub received: usize,
    /// Lines actually written back to external memory.
    pub committed: usize,
    /// Updates squashed by redundant-write elimination.
    pub invalidated: usize,
    /// Cycles spent scanning by the commit pointer.
    pub scan_cycles: u64,
}

/// Fully-associative cache with one write pointer per CU and a rotating
/// commit pointer.
#[derive(Clone, Debug)]
pub struct Updater {
    lines: Vec<CacheLine>,
    write_pointers: Vec<usize>,
    commit_pointer: usize,
    /// How many consecutive lines the commit pointer scans per cycle
    /// (3 in the paper's implementation).
    scan_width: usize,
    redundant_write_elimination: bool,
    stats: UpdaterStats,
    /// Committed (vertex, timestamp) pairs in commit order, for verification.
    commit_order: Vec<(NodeId, f64)>,
}

impl Updater {
    /// Creates an Updater with `capacity` cache lines serving `num_cu`
    /// computation units.
    ///
    /// # Panics
    /// Panics if the capacity is smaller than the number of CUs or zero.
    pub fn new(
        capacity: usize,
        num_cu: usize,
        scan_width: usize,
        redundant_write_elimination: bool,
    ) -> Self {
        assert!(
            num_cu > 0 && capacity >= num_cu,
            "Updater: capacity must cover all CUs"
        );
        assert!(scan_width > 0, "Updater: scan width must be positive");
        Self {
            lines: vec![
                CacheLine {
                    valid: false,
                    vertex: 0,
                    timestamp: 0.0,
                    words: 0
                };
                capacity
            ],
            // Write pointers start staggered so concurrent CU writes land on
            // distinct lines; the relative order of the pointers encodes the
            // chronological order of the round-robin-assigned edges.
            write_pointers: (0..num_cu).collect(),
            commit_pointer: 0,
            scan_width,
            redundant_write_elimination,
            stats: UpdaterStats::default(),
            commit_order: Vec::new(),
        }
    }

    /// Number of cache lines.
    pub fn capacity(&self) -> usize {
        self.lines.len()
    }

    /// Statistics so far.
    pub fn stats(&self) -> UpdaterStats {
        self.stats
    }

    /// The committed (vertex, timestamp) sequence.
    pub fn commit_order(&self) -> &[(NodeId, f64)] {
        &self.commit_order
    }

    /// A CU pushes an updated vertex into the cache.
    ///
    /// If redundant-write elimination is enabled and an uncommitted line for
    /// the same vertex exists, that older line is invalidated (its write will
    /// never reach external memory).
    pub fn receive(&mut self, cu: usize, vertex: NodeId, timestamp: f64, words: usize) {
        assert!(cu < self.write_pointers.len(), "Updater: unknown CU index");
        self.stats.received += 1;

        if self.redundant_write_elimination {
            for line in &mut self.lines {
                if line.valid && line.vertex == vertex {
                    line.valid = false;
                    self.stats.invalidated += 1;
                }
            }
        }

        // Place at this CU's write pointer, then advance it by the number of
        // CUs (so pointers stay interleaved, preserving round-robin order).
        let pos = self.write_pointers[cu] % self.lines.len();
        // If the slot is still valid (cache full), force-commit it first.
        if self.lines[pos].valid {
            self.commit_line(pos);
        }
        self.lines[pos] = CacheLine {
            valid: true,
            vertex,
            timestamp,
            words,
        };
        self.write_pointers[cu] += self.write_pointers.len();
    }

    /// Advances the commit pointer by one scan step (up to `scan_width`
    /// consecutive lines), committing any valid lines found.  Returns the
    /// number of lines committed this cycle.
    pub fn commit_cycle(&mut self) -> usize {
        self.stats.scan_cycles += 1;
        let mut committed = 0;
        for _ in 0..self.scan_width {
            let pos = self.commit_pointer % self.lines.len();
            if self.lines[pos].valid {
                self.commit_line(pos);
                committed += 1;
            }
            self.commit_pointer += 1;
        }
        committed
    }

    /// Drains the entire cache, committing everything that is still valid.
    /// Returns the number of scan cycles it took.
    pub fn drain(&mut self) -> u64 {
        let start = self.stats.scan_cycles;
        let mut remaining: usize = self.lines.iter().filter(|l| l.valid).count();
        while remaining > 0 {
            remaining -= self.commit_cycle();
        }
        self.stats.scan_cycles - start
    }

    fn commit_line(&mut self, pos: usize) {
        let line = &mut self.lines[pos];
        line.valid = false;
        self.stats.committed += 1;
        self.commit_order.push((line.vertex, line.timestamp));
    }

    /// Verifies that for every vertex the committed timestamps are
    /// non-decreasing — the chronological-update guarantee.
    pub fn verify_chronological(&self) -> bool {
        use std::collections::HashMap;
        let mut last: HashMap<NodeId, f64> = HashMap::new();
        for &(v, t) in &self.commit_order {
            if let Some(&prev) = last.get(&v) {
                if t < prev {
                    return false;
                }
            }
            last.insert(v, t);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commits_everything_without_duplicates_when_vertices_distinct() {
        let mut upd = Updater::new(16, 2, 3, true);
        for i in 0..10u32 {
            upd.receive((i % 2) as usize, i, i as f64, 100);
        }
        upd.drain();
        let stats = upd.stats();
        assert_eq!(stats.received, 10);
        assert_eq!(stats.committed, 10);
        assert_eq!(stats.invalidated, 0);
        assert!(upd.verify_chronological());
    }

    #[test]
    fn redundant_writes_are_eliminated() {
        let mut upd = Updater::new(16, 2, 3, true);
        // The same vertex is updated 5 times before any commit: only the
        // newest version should reach external memory.
        for i in 0..5 {
            upd.receive(i % 2, 7, i as f64, 100);
        }
        upd.drain();
        let stats = upd.stats();
        assert_eq!(stats.received, 5);
        assert_eq!(stats.invalidated, 4);
        assert_eq!(stats.committed, 1);
        assert_eq!(upd.commit_order()[0], (7, 4.0));
    }

    #[test]
    fn without_elimination_every_write_commits() {
        let mut upd = Updater::new(16, 1, 3, false);
        for i in 0..5 {
            upd.receive(0, 7, i as f64, 100);
        }
        upd.drain();
        assert_eq!(upd.stats().committed, 5);
        assert_eq!(upd.stats().invalidated, 0);
        assert!(upd.verify_chronological());
    }

    #[test]
    fn chronological_order_is_preserved_across_cus() {
        // Edges are assigned to CUs round-robin; the updater receives them in
        // that order and must commit per-vertex updates chronologically.
        let mut upd = Updater::new(8, 2, 3, true);
        let updates = [
            (0usize, 1u32, 1.0),
            (1usize, 2u32, 1.5),
            (0usize, 1u32, 2.0),
            (1usize, 3u32, 2.5),
            (0usize, 2u32, 3.0),
        ];
        for &(cu, v, t) in &updates {
            upd.receive(cu, v, t, 50);
        }
        upd.drain();
        assert!(upd.verify_chronological());
    }

    #[test]
    fn full_cache_forces_commit_instead_of_dropping() {
        let mut upd = Updater::new(2, 1, 1, true);
        for i in 0..6u32 {
            upd.receive(0, i, i as f64, 10);
        }
        upd.drain();
        assert_eq!(upd.stats().committed, 6);
        assert!(upd.verify_chronological());
    }

    #[test]
    fn scan_cycles_scale_with_capacity_over_width() {
        let mut upd = Updater::new(30, 1, 3, true);
        for i in 0..30u32 {
            upd.receive(0, i, i as f64, 10);
        }
        let cycles = upd.drain();
        // 30 valid lines scanned 3 per cycle → at least 10 cycles.
        assert!(cycles >= 10);
    }

    #[test]
    #[should_panic(expected = "capacity must cover")]
    fn rejects_capacity_smaller_than_cus() {
        let _ = Updater::new(1, 2, 3, true);
    }
}
