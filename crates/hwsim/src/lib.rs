//! Cycle-approximate simulator of the paper's FPGA accelerator, plus the
//! analytical performance model (Section V) and calibrated CPU/GPU baseline
//! cost models.
//!
//! The physical FPGAs (Xilinx Alveo U200 and ZCU104) are not available in
//! this environment, so the architecture of Section IV is reproduced as a
//! simulator that is parameterised by exactly the quantities the paper's own
//! performance model uses: the design configuration (number of Computation
//! Units, MAC-array sizes `Sg×Sg`, FAM/FTM parallelism, processing-batch size
//! `Nb`, clock frequency) and the external-memory characteristics (peak DDR
//! bandwidth and the burst-efficiency factor `α(l)`).  DESIGN.md documents
//! why this substitution preserves the behaviour the evaluation depends on.
//!
//! * [`device`] — FPGA/CPU/GPU platform specifications (Table III).
//! * [`ddr`] — the external-memory model `α(l)·BW`.
//! * [`design`] — accelerator design configurations and the resource /
//!   multi-die model (Table IV).
//! * [`updater`] — the Updater: a fully-associative cache with rotating
//!   write/commit pointers that guarantees chronological vertex updates and
//!   squashes redundant writes (Fig. 3).
//! * [`pipeline`] — the 9-stage task schedule (Fig. 4): per-stage cycle
//!   counts, batching, prefetching, and the pipelined execution across
//!   processing batches.
//! * [`perf_model`] — the closed-form performance model (Eq. 18–22).
//! * [`accelerator`] — the full accelerator simulation: functional results
//!   identical to the software reference engine, timing from the pipeline
//!   model.
//! * [`baseline`] — CPU (1 and 32 threads) and GPU cost models calibrated on
//!   the paper's Table I measurements, used for the cross-platform
//!   comparisons of Fig. 5–7.
//! * [`backend`] — [`HwSimBackend`]: the modeled datapath as a pluggable
//!   `tgnn_core::ComputeBackend` (f32 values, modeled latency), so the
//!   serving scheduler can route tenants onto a simulated accelerator.

pub mod accelerator;
pub mod backend;
pub mod baseline;
pub mod ddr;
pub mod design;
pub mod device;
pub mod perf_model;
pub mod pipeline;
pub mod updater;

pub use accelerator::{AcceleratorSim, SimulatedBatch, SimulatedStreamReport};
pub use backend::HwSimBackend;
pub use baseline::{BaselinePlatform, BaselineSimulator};
pub use ddr::DdrModel;
pub use design::{DesignConfig, ResourceUsage};
pub use device::{FpgaDevice, PlatformSpec};
pub use perf_model::PerformanceModel;
pub use updater::Updater;
