//! The hwsim-modeled FPGA datapath as a pluggable [`ComputeBackend`] —
//! hardware in the scheduling loop without hardware.
//!
//! [`HwSimBackend`] computes embeddings with the exact f32 kernels (so its
//! values are bit-identical to [`F32Backend`](tgnn_core::F32Backend) on the
//! same job), but answers every GNN job with a *modeled* service latency
//! from the 9-stage pipeline model ([`crate::pipeline::PipelineModel`]):
//! the job's workload (edges, memory updates, embeddings, neighbor fetches)
//! is split into `N_b`-edge processing batches and timed on the configured
//! [`DesignConfig`] — including its
//! [`DatapathPrecision`](crate::design::DatapathPrecision), so an int8
//! accelerator design reports proportionally smaller memory-stage times.
//!
//! Because the pipeline model is a pure function of the workload, the
//! modeled latency is deterministic: the same event stream produces the
//! same sealed batches, the same gathered jobs, and therefore the same
//! modeled latencies, run after run (pinned by the serving layer's
//! determinism test).  That is what makes the backend usable as a
//! scheduler testbed — a serving experiment can route a tenant onto a
//! simulated accelerator and observe honest, reproducible timing.

use crate::ddr::DdrModel;
use crate::design::DesignConfig;
use crate::pipeline::{BatchWorkload, PipelineModel};
use std::sync::Arc;
use std::time::Duration;
use tgnn_core::{BackendKind, ComputeBackend, GnnJobBatch, GnnStageOutput, TgnModel};
use tgnn_tensor::Workspace;

/// An hwsim-modeled FPGA compute backend: f32 kernels for the values, the
/// cycle-approximate pipeline model for the latency.
pub struct HwSimBackend {
    model: Arc<TgnModel>,
    pipeline: PipelineModel,
}

impl HwSimBackend {
    /// Prepares the backend from `model` (any attached int8 weight set is
    /// detached — the simulated datapath's *values* are the f32 reference;
    /// its precision only affects the timing model), timed on `design` over
    /// `ddr`.
    pub fn new(model: &TgnModel, design: DesignConfig, ddr: DdrModel) -> Self {
        let mut m = model.clone();
        m.detach_quantized();
        let pipeline = PipelineModel::new(design, m.config.clone(), ddr);
        Self {
            model: Arc::new(m),
            pipeline,
        }
    }

    /// [`Self::new`] on the paper's Alveo U200 design point with its
    /// measured DDR bandwidth — the default accelerator a serving
    /// configuration gets when it asks for `hwsim` without a design.
    pub fn u200(model: &TgnModel) -> Self {
        Self::new(model, DesignConfig::u200(), DdrModel::new_gbps(77.0))
    }

    /// The design configuration the latency model runs on.
    pub fn design(&self) -> &DesignConfig {
        &self.pipeline.design
    }

    /// Models the service latency of one gathered GNN job on the configured
    /// datapath (seconds), without computing anything.
    pub fn modeled_latency(&self, job: &GnnJobBatch) -> f64 {
        let total = BatchWorkload {
            // The gathered job no longer knows its event count; embeddings
            // (touched vertices) bound it within 2× and keep the model a
            // pure function of the job.
            edges: job.len(),
            memory_updates: job.len(),
            embeddings: job.len(),
            neighbors_fetched: job.total_neighbors(),
            neighbors_scored: job.total_neighbors(),
        };
        self.pipeline
            .batch_latency(&self.pipeline.split_workload(&total))
    }
}

impl ComputeBackend for HwSimBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::HwSim
    }

    fn model(&self) -> &Arc<TgnModel> {
        &self.model
    }

    fn run_gnn(&self, job: &GnnJobBatch, ws: &mut Workspace) -> GnnStageOutput {
        let embeddings = job.run(&self.model, ws);
        let modeled = self.modeled_latency(job);
        GnnStageOutput {
            embeddings,
            modeled_latency: Some(Duration::from_secs_f64(modeled)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::DatapathPrecision;
    use tgnn_core::{F32Backend, ModelConfig, SampledBatch};
    use tgnn_graph::{EventBatch, InteractionEvent, TemporalGraph};
    use tgnn_tensor::{Matrix, TensorRng};

    fn gathered_job(seed: u64) -> (TgnModel, GnnJobBatch) {
        let cfg = ModelConfig::tiny(0, 2);
        let model = TgnModel::new(cfg.clone(), &mut TensorRng::new(seed));
        let events: Vec<InteractionEvent> = (0..12u32)
            .map(|i| InteractionEvent::new(i % 5, (i + 1) % 5, i, i as f64))
            .collect();
        let graph = TemporalGraph::new(
            "backend-test",
            5,
            Matrix::zeros(5, 0),
            Matrix::zeros(12, 2),
            events.clone(),
        );
        let sampled = SampledBatch::assemble(EventBatch::new(events), 0, |_, _, _, _| {});
        let updated = std::collections::HashMap::new();
        let job = GnnJobBatch::gather(&sampled, &updated, &graph, &cfg, |_, dst| dst.fill(0.25));
        (model, job)
    }

    #[test]
    fn hwsim_values_match_f32_and_latency_is_modeled_and_deterministic() {
        let (model, job) = gathered_job(3);
        let hw = HwSimBackend::u200(&model);
        let f32b = F32Backend::new(&model);
        let mut ws = Workspace::new();
        let a = hw.run_gnn(&job, &mut ws);
        let b = f32b.run_gnn(&job, &mut ws);
        assert_eq!(
            a.embeddings, b.embeddings,
            "hwsim must compute with the f32 kernels"
        );
        assert!(b.modeled_latency.is_none());
        let lat = a.modeled_latency.expect("hwsim models a latency");
        assert!(lat > Duration::ZERO);
        // Pure in the job: the same job models the same latency.
        let again = hw.run_gnn(&job, &mut ws);
        assert_eq!(again.modeled_latency, Some(lat));
    }

    #[test]
    fn int8_design_models_a_faster_datapath_than_fp32() {
        let (model, job) = gathered_job(9);
        let fp32 = HwSimBackend::u200(&model);
        let int8 = HwSimBackend::new(
            &model,
            DesignConfig::u200().with_precision(DatapathPrecision::int8()),
            DdrModel::new_gbps(77.0),
        );
        assert!(int8.modeled_latency(&job) <= fp32.modeled_latency(&job));
        assert_eq!(int8.kind(), BackendKind::HwSim);
    }
}
