//! External-memory (DDR) model.
//!
//! The performance model of Section V expresses the load/store time of a
//! pipeline stage as `bytes / (α(l)·BW)` where `BW` is the peak bandwidth and
//! `α(l) ∈ (0, 1]` is the effective-bandwidth factor for burst transactions
//! of length `l` (following the FPGA memory-system characterisation of Lu et
//! al. that the paper cites).  Short bursts waste a large fraction of the
//! peak bandwidth; long bursts approach it.

use serde::{Deserialize, Serialize};

/// DDR bandwidth model with burst-efficiency derating and a fixed
/// per-transaction latency.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DdrModel {
    /// Peak bandwidth in bytes per second.
    pub peak_bandwidth: f64,
    /// Burst length (bytes) at which efficiency reaches ~63% of peak.
    pub knee_bytes: f64,
    /// Fixed latency per transaction, seconds (row activation + controller).
    pub transaction_latency: f64,
}

impl DdrModel {
    /// Creates a model from a peak bandwidth in GB/s with the default knee
    /// (256 B, typical for a 64-bit DDR4 channel) and 60 ns transaction
    /// latency.
    pub fn new_gbps(peak_gbps: f64) -> Self {
        assert!(peak_gbps > 0.0, "DdrModel: bandwidth must be positive");
        Self {
            peak_bandwidth: peak_gbps * 1e9,
            knee_bytes: 256.0,
            transaction_latency: 60e-9,
        }
    }

    /// Effective-bandwidth factor `α(l)` for a burst of `burst_bytes`.
    /// Monotonically increasing in the burst length, in `(0, 1]`.
    pub fn alpha(&self, burst_bytes: f64) -> f64 {
        if burst_bytes <= 0.0 {
            return 1e-3;
        }
        let a = 1.0 - (-burst_bytes / self.knee_bytes).exp();
        a.clamp(1e-3, 1.0)
    }

    /// Effective bandwidth for a given burst length, bytes per second.
    pub fn effective_bandwidth(&self, burst_bytes: f64) -> f64 {
        self.peak_bandwidth * self.alpha(burst_bytes)
    }

    /// Time to move `total_bytes` using transactions of `burst_bytes`
    /// (seconds), including the fixed per-transaction latency.
    pub fn transfer_time(&self, total_bytes: f64, burst_bytes: f64) -> f64 {
        if total_bytes <= 0.0 {
            return 0.0;
        }
        let burst = burst_bytes.max(1.0);
        let transactions = (total_bytes / burst).ceil();
        total_bytes / self.effective_bandwidth(burst) + transactions * self.transaction_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_monotone_and_bounded() {
        let ddr = DdrModel::new_gbps(77.0);
        let mut prev = 0.0;
        for &l in &[8.0, 32.0, 64.0, 256.0, 1024.0, 8192.0] {
            let a = ddr.alpha(l);
            assert!(a > prev, "alpha must increase with burst length");
            assert!(a <= 1.0);
            prev = a;
        }
        assert!(ddr.alpha(0.0) > 0.0);
        assert!(ddr.alpha(1e9) > 0.99);
    }

    #[test]
    fn long_bursts_approach_peak_bandwidth() {
        let ddr = DdrModel::new_gbps(10.0);
        let bytes = 100e6;
        let t_long = ddr.transfer_time(bytes, 64.0 * 1024.0);
        let ideal = bytes / 10e9;
        assert!(
            t_long < ideal * 1.3,
            "long bursts should be near peak: {t_long} vs {ideal}"
        );
    }

    #[test]
    fn short_bursts_are_much_slower() {
        let ddr = DdrModel::new_gbps(10.0);
        let bytes = 1e6;
        let t_short = ddr.transfer_time(bytes, 16.0);
        let t_long = ddr.transfer_time(bytes, 4096.0);
        assert!(
            t_short > 3.0 * t_long,
            "short bursts must be penalised: {t_short} vs {t_long}"
        );
    }

    #[test]
    fn zero_bytes_take_zero_time() {
        let ddr = DdrModel::new_gbps(19.2);
        assert_eq!(ddr.transfer_time(0.0, 64.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn rejects_nonpositive_bandwidth() {
        let _ = DdrModel::new_gbps(0.0);
    }
}
