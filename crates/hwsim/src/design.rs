//! Accelerator design configurations, the resource model, and the multi-die
//! (SLR) mapping — Table IV of the paper.

use crate::device::FpgaDevice;
use serde::{Deserialize, Serialize};
use tgnn_core::ModelConfig;

/// Byte widths of the accelerator's numeric formats — the datapath half of
/// the model-architecture co-design.  The paper's implementation streams
/// IEEE fp32 (4-byte weights and activations); a fixed-point int8 datapath
/// quarters every DDR transfer the performance model accounts for, which is
/// what the `tgnn-quant` CPU backend mirrors in software.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DatapathPrecision {
    /// Bytes per stored weight (on-chip weight staging / loads).
    pub weight_bytes: f64,
    /// Bytes per activation / state word (memory rows, features, messages,
    /// embeddings — everything that crosses DDR per batch).
    pub activation_bytes: f64,
}

impl DatapathPrecision {
    /// IEEE fp32 everywhere — the paper's implementation.
    pub fn fp32() -> Self {
        Self {
            weight_bytes: 4.0,
            activation_bytes: 4.0,
        }
    }

    /// Symmetric int8 weights and activations (scales are amortised over
    /// whole tensors and do not affect per-word traffic).
    pub fn int8() -> Self {
        Self {
            weight_bytes: 1.0,
            activation_bytes: 1.0,
        }
    }

    /// Validates the widths.
    pub fn validate(&self) -> Result<(), String> {
        if self.weight_bytes <= 0.0 || self.activation_bytes <= 0.0 {
            return Err("datapath byte widths must be positive".into());
        }
        Ok(())
    }
}

impl Default for DatapathPrecision {
    fn default() -> Self {
        Self::fp32()
    }
}

/// A design configuration of the accelerator (the left half of Table IV).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DesignConfig {
    /// Human-readable name.
    pub name: String,
    /// Number of Computation Units `N_cu`.
    pub num_cu: usize,
    /// MAC-array edge `S_g` of each GRU gate in the Memory Update Unit
    /// (each gate is an `S_g × S_g` array).
    pub sg: usize,
    /// Computation parallelism of the Feature Aggregation Module.
    pub s_fam: usize,
    /// Computation parallelism of the Feature Transformation Module
    /// (an `S_ftm × S_ftm` array).
    pub s_ftm: usize,
    /// Processing-batch size `N_b` (edges that flow through one pipeline
    /// stage together).
    pub nb: usize,
    /// Clock frequency in MHz.
    pub frequency_mhz: f64,
    /// Whether neighbor-memory prefetching (Section IV-C) is enabled.
    pub prefetch: bool,
    /// Whether the Updater eliminates redundant writes to the same vertex.
    pub redundant_write_elimination: bool,
    /// Numeric format of the datapath (bytes per weight / activation).
    pub precision: DatapathPrecision,
}

impl DesignConfig {
    /// The U200 design point of Table IV: 2 CUs, Sg²=8², S_FAM=16, S_FTM=8×8,
    /// 250 MHz.
    pub fn u200() -> Self {
        Self {
            name: "U200".into(),
            num_cu: 2,
            sg: 8,
            s_fam: 16,
            s_ftm: 8,
            nb: 8,
            frequency_mhz: 250.0,
            prefetch: true,
            redundant_write_elimination: true,
            precision: DatapathPrecision::fp32(),
        }
    }

    /// The ZCU104 design point of Table IV: 1 CU, Sg²=4², S_FAM=8, S_FTM=4×4,
    /// 125 MHz.
    pub fn zcu104() -> Self {
        Self {
            name: "ZCU104".into(),
            num_cu: 1,
            sg: 4,
            s_fam: 8,
            s_ftm: 4,
            nb: 4,
            frequency_mhz: 125.0,
            prefetch: true,
            redundant_write_elimination: true,
            precision: DatapathPrecision::fp32(),
        }
    }

    /// Builder-style precision override: the same design point with an int8
    /// (or custom) datapath.
    pub fn with_precision(mut self, precision: DatapathPrecision) -> Self {
        self.precision = precision;
        self
    }

    /// Clock period in seconds.
    pub fn clock_period(&self) -> f64 {
        1.0 / (self.frequency_mhz * 1e6)
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_cu == 0 || self.sg == 0 || self.s_fam == 0 || self.s_ftm == 0 || self.nb == 0 {
            return Err("all parallelism parameters must be positive".into());
        }
        if self.frequency_mhz <= 0.0 {
            return Err("frequency must be positive".into());
        }
        self.precision.validate()
    }
}

/// Estimated resource utilization of a design (the right half of Table IV).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ResourceUsage {
    pub luts: u64,
    pub dsps: u64,
    pub brams: u64,
    pub urams: u64,
}

impl ResourceUsage {
    /// True if the usage fits on the given device.
    pub fn fits(&self, device: &FpgaDevice) -> bool {
        self.luts <= device.total_luts()
            && self.dsps <= device.total_dsps()
            && self.brams <= device.total_brams()
            && self.urams <= device.total_urams()
    }

    /// Utilization fractions `(lut, dsp, bram, uram)` relative to a device.
    pub fn utilization(&self, device: &FpgaDevice) -> (f64, f64, f64, f64) {
        (
            self.luts as f64 / device.total_luts() as f64,
            self.dsps as f64 / device.total_dsps() as f64,
            self.brams as f64 / device.total_brams() as f64,
            self.urams as f64 / device.total_urams() as f64,
        )
    }
}

/// DSPs per fp32 multiplier / accumulator, as stated in Section VI-A.
const DSP_PER_MULTIPLIER: u64 = 3;
const DSP_PER_ACCUMULATOR: u64 = 2;

/// Estimates the resource usage of a design point running a given model
/// configuration.
///
/// The estimate follows the structure of the architecture: per CU, three
/// `S_g × S_g` MAC arrays (update/reset/memory gates) plus the merging gate,
/// the FAM adder tree (`S_fam` multipliers + accumulators), the FTM
/// `S_ftm × S_ftm` array, and the on-chip tables (LUT time encoder, Updater
/// cache, FIFOs) mapped to BRAM/URAM.
pub fn estimate_resources(design: &DesignConfig, model: &ModelConfig) -> ResourceUsage {
    let per_gate_macs = (design.sg * design.sg) as u64;
    let muu_macs = 3 * per_gate_macs + design.sg as u64; // 3 gate arrays + merge
    let fam_macs = design.s_fam as u64;
    let ftm_macs = (design.s_ftm * design.s_ftm) as u64;
    let am_macs = (model.sampled_neighbors * model.sampled_neighbors) as u64; // W_t·Δt array
    let macs_per_cu = muu_macs + fam_macs + ftm_macs + am_macs;

    let dsps = design.num_cu as u64 * macs_per_cu * (DSP_PER_MULTIPLIER + DSP_PER_ACCUMULATOR);

    // Control logic, FIFOs, and the data loader/updater dominate the LUT
    // count; scale with the number of CUs and the datapath widths.
    let luts = 60_000
        + design.num_cu as u64
            * (30_000
                + 64 * (design.sg * design.sg + design.s_ftm * design.s_ftm + design.s_fam) as u64);

    // BRAM: inter-module FIFOs (~2 per stage per CU), the Updater cache, and
    // double-buffered per-batch staging of messages and neighbor features.
    // Staged words are activations, so the datapath precision sets their
    // width (int8 quarters the staging footprint).
    let bytes_per_word = (design.precision.activation_bytes.ceil() as u64).max(1);
    let staging_bytes = (design.nb
        * (model.message_dim() + model.sampled_neighbors * model.neighbor_input_dim()))
        as u64
        * bytes_per_word
        * 2;
    let bram_bytes = 36 * 1024 / 8;
    let staging_brams = staging_bytes.div_ceil(bram_bytes);
    let brams = design.num_cu as u64 * (24 + staging_brams) + 32;

    // URAM: the fused LUT time encoder tables and the vertex-memory cache of
    // hot vertices.
    let lut_bytes = (model.lut_bins * model.message_dim()) as u64 * bytes_per_word;
    let uram_bytes = 288 * 1024 / 8;
    let urams = if model.time_encoder == tgnn_core::TimeEncoderKind::Lut {
        design.num_cu as u64 * lut_bytes.div_ceil(uram_bytes) * 4
    } else {
        0
    };

    ResourceUsage {
        luts,
        dsps,
        brams,
        urams,
    }
}

/// Assignment of hardware modules to dies (Super Logic Regions), as in the
/// right-hand side of Fig. 2.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MultiDieMapping {
    /// die index -> module names placed on it.
    pub placement: Vec<Vec<String>>,
    /// Number of inter-die FIFO crossings required.
    pub inter_die_links: usize,
}

/// Maps a design onto a device's dies: the shared front-end (edge parser,
/// data loader, updater) goes on die 0 and the CUs are distributed
/// round-robin over the remaining dies (or share die 0 on single-die parts).
pub fn map_to_dies(design: &DesignConfig, device: &FpgaDevice) -> MultiDieMapping {
    let mut placement: Vec<Vec<String>> = vec![Vec::new(); device.num_dies];
    placement[0].push("EdgeParser".into());
    placement[0].push("DataLoader".into());
    placement[0].push("Updater".into());
    let mut links = 0;
    for cu in 0..design.num_cu {
        let die = if device.num_dies == 1 {
            0
        } else {
            1 + cu % (device.num_dies - 1)
        };
        placement[die].push(format!("CU{cu}"));
        if die != 0 {
            links += 2; // loader→CU and CU→updater crossings
        }
    }
    MultiDieMapping {
        placement,
        inter_die_links: links,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgnn_core::OptimizationVariant;

    fn paper_model() -> ModelConfig {
        ModelConfig::paper_default(0, 172).with_variant(OptimizationVariant::NpMedium)
    }

    #[test]
    fn table_iv_design_points() {
        let u200 = DesignConfig::u200();
        assert_eq!(
            (u200.num_cu, u200.sg, u200.s_fam, u200.s_ftm),
            (2, 8, 16, 8)
        );
        assert!((u200.frequency_mhz - 250.0).abs() < 1e-9);
        assert!(u200.validate().is_ok());

        let zcu = DesignConfig::zcu104();
        assert_eq!((zcu.num_cu, zcu.sg, zcu.s_fam, zcu.s_ftm), (1, 4, 8, 4));
        assert!((zcu.frequency_mhz - 125.0).abs() < 1e-9);
        assert!(zcu.clock_period() > u200.clock_period());
    }

    #[test]
    fn designs_fit_their_devices() {
        let model = paper_model();
        let u200_use = estimate_resources(&DesignConfig::u200(), &model);
        assert!(u200_use.fits(&FpgaDevice::alveo_u200()), "{u200_use:?}");
        let zcu_use = estimate_resources(&DesignConfig::zcu104(), &model);
        assert!(zcu_use.fits(&FpgaDevice::zcu104()), "{zcu_use:?}");
        // The bigger design uses more of everything.
        assert!(u200_use.dsps > zcu_use.dsps);
        assert!(u200_use.luts > zcu_use.luts);
    }

    #[test]
    fn dsp_count_tracks_parallelism() {
        let model = paper_model();
        let mut small = DesignConfig::zcu104();
        let small_use = estimate_resources(&small, &model);
        small.sg *= 2;
        small.s_ftm *= 2;
        let big_use = estimate_resources(&small, &model);
        assert!(big_use.dsps > 2 * small_use.dsps);
    }

    #[test]
    fn utilization_fractions_in_unit_interval() {
        let model = paper_model();
        let usage = estimate_resources(&DesignConfig::u200(), &model);
        let (l, d, b, u) = usage.utilization(&FpgaDevice::alveo_u200());
        for f in [l, d, b, u] {
            assert!((0.0..=1.0).contains(&f), "utilization {f} out of range");
        }
    }

    #[test]
    fn lut_time_encoder_consumes_uram_only_when_enabled() {
        let mut model = paper_model();
        let with_lut = estimate_resources(&DesignConfig::u200(), &model);
        model.time_encoder = tgnn_core::TimeEncoderKind::Cos;
        let without_lut = estimate_resources(&DesignConfig::u200(), &model);
        assert!(with_lut.urams > 0);
        assert_eq!(without_lut.urams, 0);
    }

    #[test]
    fn multi_die_mapping_places_cus_off_die_zero_on_u200() {
        let mapping = map_to_dies(&DesignConfig::u200(), &FpgaDevice::alveo_u200());
        assert_eq!(mapping.placement.len(), 3);
        assert!(mapping.placement[0].iter().any(|m| m == "Updater"));
        assert!(mapping.placement[1].iter().any(|m| m.starts_with("CU")));
        assert!(mapping.inter_die_links > 0);

        let single = map_to_dies(&DesignConfig::zcu104(), &FpgaDevice::zcu104());
        assert_eq!(single.placement.len(), 1);
        assert_eq!(single.inter_die_links, 0);
    }

    #[test]
    fn invalid_designs_rejected() {
        let mut bad = DesignConfig::u200();
        bad.num_cu = 0;
        assert!(bad.validate().is_err());
        let mut bad = DesignConfig::u200();
        bad.frequency_mhz = 0.0;
        assert!(bad.validate().is_err());
        let mut bad = DesignConfig::u200();
        bad.precision.activation_bytes = 0.0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn int8_precision_shrinks_activation_staging_bram() {
        let model = paper_model();
        let fp32 = estimate_resources(&DesignConfig::u200(), &model);
        let int8 = estimate_resources(
            &DesignConfig::u200().with_precision(DatapathPrecision::int8()),
            &model,
        );
        assert!(
            int8.brams < fp32.brams,
            "int8 staging must use fewer BRAMs: {} vs {}",
            int8.brams,
            fp32.brams
        );
        // Compute-array DSPs are sized by parallelism, not word width, in
        // this estimate.
        assert_eq!(int8.dsps, fp32.dsps);
        assert!(DatapathPrecision::default() == DatapathPrecision::fp32());
    }
}
