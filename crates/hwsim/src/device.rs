//! Hardware platform specifications — Table III of the paper.

use serde::{Deserialize, Serialize};

/// An FPGA device (per-die resources and external-memory bandwidth).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FpgaDevice {
    /// Marketing name.
    pub name: String,
    /// Number of dies (Super Logic Regions).
    pub num_dies: usize,
    /// Look-up tables per die.
    pub luts_per_die: u64,
    /// DSP slices per die.
    pub dsps_per_die: u64,
    /// 36 Kb block RAMs per die.
    pub brams_per_die: u64,
    /// 288 Kb ultra RAMs per die.
    pub urams_per_die: u64,
    /// Peak external-memory bandwidth in GB/s.
    pub ddr_bandwidth_gbps: f64,
    /// Maximum achievable clock frequency for this design family, MHz.
    pub max_frequency_mhz: f64,
}

impl FpgaDevice {
    /// Xilinx Alveo U200 (cloud card): 3 SLRs, 77 GB/s DDR4.
    pub fn alveo_u200() -> Self {
        Self {
            name: "Xilinx Alveo U200".into(),
            num_dies: 3,
            luts_per_die: 394_000,
            dsps_per_die: 2_280,
            brams_per_die: 720,
            urams_per_die: 320,
            ddr_bandwidth_gbps: 77.0,
            max_frequency_mhz: 250.0,
        }
    }

    /// Xilinx ZCU104 (embedded board): 1 die, 19.2 GB/s DDR4.
    pub fn zcu104() -> Self {
        Self {
            name: "Xilinx ZCU104".into(),
            num_dies: 1,
            luts_per_die: 230_000,
            dsps_per_die: 1_728,
            brams_per_die: 312,
            urams_per_die: 96,
            ddr_bandwidth_gbps: 19.2,
            max_frequency_mhz: 125.0,
        }
    }

    /// Total LUTs across dies.
    pub fn total_luts(&self) -> u64 {
        self.luts_per_die * self.num_dies as u64
    }

    /// Total DSPs across dies.
    pub fn total_dsps(&self) -> u64 {
        self.dsps_per_die * self.num_dies as u64
    }

    /// Total BRAMs across dies.
    pub fn total_brams(&self) -> u64 {
        self.brams_per_die * self.num_dies as u64
    }

    /// Total URAMs across dies.
    pub fn total_urams(&self) -> u64 {
        self.urams_per_die * self.num_dies as u64
    }

    /// Total on-chip memory capacity in bytes (BRAM 36 Kb + URAM 288 Kb).
    pub fn on_chip_bytes(&self) -> u64 {
        (self.total_brams() * 36 * 1024 + self.total_urams() * 288 * 1024) / 8
    }

    /// Peak DDR bandwidth in bytes per second.
    pub fn ddr_bandwidth_bytes(&self) -> f64 {
        self.ddr_bandwidth_gbps * 1e9
    }
}

/// Non-FPGA baseline platforms (Table III).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlatformSpec {
    pub name: String,
    /// Number of hardware threads / CUDA cores available.
    pub parallel_lanes: usize,
    /// Clock frequency, MHz.
    pub frequency_mhz: f64,
    /// Peak memory bandwidth, GB/s.
    pub memory_bandwidth_gbps: f64,
}

impl PlatformSpec {
    /// Dual Intel Xeon Gold 5120 (the paper's CPU baseline).
    pub fn xeon_gold_5120_dual() -> Self {
        Self {
            name: "2x Intel Xeon Gold 5120".into(),
            parallel_lanes: 56,
            frequency_mhz: 2_200.0,
            memory_bandwidth_gbps: 89.0,
        }
    }

    /// Nvidia Titan X (the paper's GPU baseline).
    pub fn titan_x() -> Self {
        Self {
            name: "Nvidia Titan X".into(),
            parallel_lanes: 3_840,
            frequency_mhz: 1_532.0,
            memory_bandwidth_gbps: 547.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_specs() {
        let u200 = FpgaDevice::alveo_u200();
        assert_eq!(u200.num_dies, 3);
        assert_eq!(u200.total_dsps(), 3 * 2_280);
        assert_eq!(u200.total_luts(), 3 * 394_000);
        assert!((u200.ddr_bandwidth_gbps - 77.0).abs() < 1e-9);

        let zcu = FpgaDevice::zcu104();
        assert_eq!(zcu.num_dies, 1);
        assert_eq!(zcu.total_dsps(), 1_728);
        assert!((zcu.ddr_bandwidth_gbps - 19.2).abs() < 1e-9);
        assert!(zcu.max_frequency_mhz < u200.max_frequency_mhz);
    }

    #[test]
    fn on_chip_capacity_positive_and_ordered() {
        let u200 = FpgaDevice::alveo_u200();
        let zcu = FpgaDevice::zcu104();
        assert!(u200.on_chip_bytes() > zcu.on_chip_bytes());
        // Sanity: U200 has tens of MB of on-chip memory.
        assert!(u200.on_chip_bytes() > 30 * 1024 * 1024);
    }

    #[test]
    fn baseline_platforms() {
        let cpu = PlatformSpec::xeon_gold_5120_dual();
        let gpu = PlatformSpec::titan_x();
        assert_eq!(cpu.parallel_lanes, 56);
        assert!(gpu.memory_bandwidth_gbps > cpu.memory_bandwidth_gbps);
    }
}
