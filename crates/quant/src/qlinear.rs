//! [`QuantizedLinear`] — an affine layer running on the packed int8 GEMM.
//!
//! Built from an f32 [`tgnn_nn::Linear`] plus a calibrated input-activation
//! scale: weights are quantized per row (one scale per output feature) and
//! pre-packed into the `maddubs` panel layout once at construction; the
//! forward pass quantizes the incoming activations with the static scale
//! (saturating at the calibrated clip), runs the i8×i8→i32 kernel, and
//! dequantizes + adds the f32 bias in the fused epilogue.  The only
//! per-call temporaries (the quantized activation rows) come from the
//! workspace's i8 pool, so the hot path stays allocation-free.

use crate::qtensor::QTensor;
use serde::{Deserialize, Serialize};
use tgnn_nn::Linear;
use tgnn_tensor::gemm_i8::{
    matmul_i8_dequant_into, pack_rhs_i8, packed_rhs_len, padded_k, quantize_slice_into,
};
use tgnn_tensor::{Float, Matrix, Workspace};

/// `y = dequant(quant(x) · W_qᵀ) + b` on the int8 kernel.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct QuantizedLinear {
    /// Per-row quantized weights (kept for inspection / round-trip tests).
    weight: QTensor,
    /// Weights re-packed into the int8 GEMM panel layout.
    packed: Vec<i8>,
    /// `act_scale · w_scale[j]` per output feature — the fused dequant
    /// factors of the epilogue.
    combined_scales: Vec<Float>,
    /// f32 bias, added in the epilogue.
    bias: Vec<Float>,
    /// Static input-activation scale from calibration.
    act_scale: Float,
    in_dim: usize,
    out_dim: usize,
}

impl QuantizedLinear {
    /// Quantizes an f32 layer given the calibrated scale of its input
    /// activations.
    ///
    /// # Panics
    /// Panics if `act_scale` is not positive and finite.
    pub fn from_linear(layer: &Linear, act_scale: Float) -> Self {
        assert!(
            act_scale > 0.0 && act_scale.is_finite(),
            "QuantizedLinear: activation scale must be positive and finite"
        );
        let w = &layer.weight.value;
        let weight = QTensor::quantize_per_row(w);
        let (out_dim, in_dim) = w.shape();
        let mut packed = vec![0i8; packed_rhs_len(out_dim, in_dim)];
        pack_rhs_i8(weight.as_slice(), out_dim, in_dim, &mut packed);
        let combined_scales: Vec<Float> = (0..out_dim)
            .map(|j| act_scale * weight.row_scale(j))
            .collect();
        Self {
            weight,
            packed,
            combined_scales,
            bias: layer.bias.value.row(0).to_vec(),
            act_scale,
            in_dim,
            out_dim,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The calibrated input-activation scale.
    pub fn act_scale(&self) -> Float {
        self.act_scale
    }

    /// The quantized weights.
    pub fn weight(&self) -> &QTensor {
        &self.weight
    }

    /// Forward pass writing into a pre-sized output: quantize activations →
    /// int8 GEMM → fused dequant + bias.
    ///
    /// # Panics
    /// Panics on shape mismatches.
    pub fn forward_into(&self, x: &Matrix, out: &mut Matrix, ws: &mut Workspace) {
        assert_eq!(
            x.cols(),
            self.in_dim,
            "QuantizedLinear::forward_into: input dim mismatch"
        );
        assert_eq!(
            out.shape(),
            (x.rows(), self.out_dim),
            "QuantizedLinear::forward_into: output shape mismatch"
        );
        let m = x.rows();
        if m == 0 {
            return;
        }
        let kp = padded_k(self.in_dim);
        let mut a_q = ws.take_i8(m * kp);
        for i in 0..m {
            quantize_slice_into(x.row(i), self.act_scale, &mut a_q[i * kp..(i + 1) * kp]);
        }
        matmul_i8_dequant_into(
            &a_q,
            m,
            self.in_dim,
            &self.packed,
            self.out_dim,
            &self.combined_scales,
            Some(&self.bias),
            out,
        );
        ws.recycle_i8(a_q);
    }

    /// [`Self::forward_into`] with the output taken from the workspace
    /// (recycle it back when done).
    pub fn forward_ws(&self, x: &Matrix, ws: &mut Workspace) -> Matrix {
        let mut out = ws.take_matrix(x.rows(), self.out_dim);
        self.forward_into(x, &mut out, ws);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgnn_tensor::stats::{cosine_similarity, max_abs_diff};
    use tgnn_tensor::TensorRng;

    #[test]
    fn quantized_forward_tracks_f32_within_tolerance_across_shapes_and_seeds() {
        for seed in [3u64, 17, 88] {
            let mut rng = TensorRng::new(seed);
            for &(batch, in_dim, out_dim) in &[(1usize, 7usize, 5usize), (9, 33, 12), (40, 96, 64)]
            {
                let layer = Linear::new("t", in_dim, out_dim, &mut rng);
                let x = rng.uniform_matrix(batch, in_dim, -1.0, 1.0);
                let reference = layer.forward(&x);
                let q = QuantizedLinear::from_linear(&layer, 1.0 / 127.0);
                let mut ws = Workspace::new();
                let out = q.forward_ws(&x, &mut ws);

                // Per-element error bound: each of the `in_dim` products
                // carries at most half a step of activation error times the
                // weight magnitude and vice versa.  A loose analytical bound
                // (1.5 quantization steps per accumulated term) must hold.
                let w_amax = layer.weight.value.max_abs();
                let bound =
                    in_dim as Float * 1.5 * (q.act_scale() * w_amax + (w_amax / 127.0) * 1.0);
                let err = max_abs_diff(reference.as_slice(), out.as_slice());
                assert!(
                    err <= bound,
                    "{batch}x{in_dim}x{out_dim} seed {seed}: err {err} > bound {bound}"
                );
                for i in 0..batch {
                    let cos = cosine_similarity(reference.row(i), out.row(i));
                    assert!(
                        cos > 0.995,
                        "{batch}x{in_dim}x{out_dim} seed {seed} row {i}: cosine {cos}"
                    );
                }
                ws.recycle_matrix(out);
            }
        }
    }

    #[test]
    fn saturating_inputs_stay_finite_and_bounded() {
        let mut rng = TensorRng::new(5);
        let layer = Linear::new("t", 8, 4, &mut rng);
        let q = QuantizedLinear::from_linear(&layer, 1.0 / 127.0); // clip at |x| = 1
        let mut x = Matrix::full(2, 8, 1e6); // far beyond the calibrated range
        x[(1, 0)] = Float::NAN;
        let mut ws = Workspace::new();
        let out = q.forward_ws(&x, &mut ws);
        assert!(out.all_finite(), "saturated forward must stay finite");
        // Saturated activations behave like a clamped input of ±1.
        let clamped = layer.forward(&Matrix::full(1, 8, 1.0));
        let cos = cosine_similarity(out.row(0), clamped.row(0));
        assert!(cos > 0.99, "saturation should clamp, got cosine {cos}");
    }

    #[test]
    fn steady_state_forward_does_not_allocate() {
        let mut rng = TensorRng::new(6);
        let layer = Linear::new("t", 24, 16, &mut rng);
        let q = QuantizedLinear::from_linear(&layer, 1.0 / 64.0);
        let x = rng.uniform_matrix(10, 24, -1.0, 1.0);
        let mut ws = Workspace::new();
        for _ in 0..2 {
            let out = q.forward_ws(&x, &mut ws);
            ws.recycle_matrix(out);
        }
        let warm = ws.heap_allocs();
        for _ in 0..50 {
            let out = q.forward_ws(&x, &mut ws);
            ws.recycle_matrix(out);
        }
        assert_eq!(
            ws.heap_allocs(),
            warm,
            "quantized forward must not allocate"
        );
    }

    #[test]
    fn weight_round_trip_is_close() {
        let mut rng = TensorRng::new(7);
        let layer = Linear::new("t", 16, 8, &mut rng);
        let q = QuantizedLinear::from_linear(&layer, 1.0);
        let back = q.weight().dequantize();
        let err = max_abs_diff(layer.weight.value.as_slice(), back.as_slice());
        assert!(err <= q.weight().step_bound() + 1e-7);
    }
}
