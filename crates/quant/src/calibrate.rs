//! Activation-range calibration.
//!
//! The int8 path quantizes activations with *static* per-layer scales, so
//! before quantizing a model the f32 engine is run over a sample stream with
//! an [`ActivationRecorder`] attached.  The recorder keeps, per named layer
//! input, the running absolute maximum plus a bounded sample of absolute
//! values; [`ActivationRecorder::finish`] turns them into per-layer scales
//! using percentile clipping (`clip_percentile` of the observed |x| mass maps
//! to 127; the tail saturates), computed with the `tensor::stats` quantile
//! machinery.  Clipping at e.g. p99.9 instead of the absolute max trades a
//! tiny saturation tail for a finer grid over the bulk of the distribution —
//! the standard post-training-quantization recipe.

use crate::qtensor::scale_for_amax;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use tgnn_tensor::stats::percentile;
use tgnn_tensor::Float;

/// Observer for per-layer activation values, implemented by
/// [`ActivationRecorder`] and threaded through the f32 engine's batched
/// forward paths during a calibration pass.
pub trait ActivationObserver {
    /// Records the input values of the named layer (one call per batch).
    fn record(&mut self, layer: &'static str, values: &[Float]);
}

/// Tuning knobs of the quantization pass.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct QuantConfig {
    /// Percentile of the absolute-activation distribution mapped to the top
    /// of the int8 grid; values beyond it saturate.  100.0 disables clipping.
    pub clip_percentile: Float,
    /// Quantize the GRU memory-update projections too.  The GRU is recurrent
    /// (its output feeds the next update's input), so disabling this keeps
    /// the memory path in f32 when drift over long streams matters more than
    /// the update-stage speedup.
    pub quantize_gru: bool,
}

impl Default for QuantConfig {
    /// No clipping, GRU quantized.  Clipping (e.g. 99.9) buys a finer grid
    /// over the bulk of the distribution but saturates the tail — measured
    /// on this model it destabilises the vanilla-attention softmax (an
    /// occasional clipped query/key outlier flips a neighbor weight), so the
    /// safe default maps the true maximum onto the grid.  See the README's
    /// "Numerics & quantization" section for the measured trade-off.
    fn default() -> Self {
        Self {
            clip_percentile: 100.0,
            quantize_gru: true,
        }
    }
}

/// Per-layer statistics accumulated during calibration.
#[derive(Clone, Debug, Default)]
struct LayerStats {
    /// Running absolute maximum over everything observed.
    amax: Float,
    /// Bounded reservoir of absolute values for the percentile estimate.
    sample: Vec<Float>,
    /// Total values observed (reported; also drives reservoir thinning).
    observed: u64,
}

/// Cap on stored absolute values per layer: once full, further values only
/// update the running max (the percentile estimate rests on the prefix,
/// which at 64k values is ample for a p99.9 estimate).
const MAX_SAMPLE: usize = 1 << 16;

/// Records activation ranges during a calibration pass over the f32 engine.
#[derive(Clone, Debug, Default)]
pub struct ActivationRecorder {
    layers: HashMap<&'static str, LayerStats>,
}

impl ActivationRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct layers observed so far.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Finalises the pass into per-layer activation scales.
    pub fn finish(&self, config: &QuantConfig) -> ActivationRanges {
        let mut scales = HashMap::with_capacity(self.layers.len());
        for (&layer, stats) in &self.layers {
            let amax = if config.clip_percentile >= 100.0 || stats.sample.is_empty() {
                stats.amax
            } else {
                percentile(&stats.sample, config.clip_percentile)
            };
            scales.insert(
                layer.to_string(),
                LayerRange {
                    scale: scale_for_amax(amax),
                    amax: stats.amax,
                    clipped_amax: amax,
                    observed: stats.observed,
                },
            );
        }
        ActivationRanges { scales }
    }
}

impl ActivationObserver for ActivationRecorder {
    fn record(&mut self, layer: &'static str, values: &[Float]) {
        let stats = self.layers.entry(layer).or_default();
        stats.observed += values.len() as u64;
        for &v in values {
            if v.is_finite() {
                let a = v.abs();
                if a > stats.amax {
                    stats.amax = a;
                }
            }
        }
        if stats.sample.len() < MAX_SAMPLE {
            stats
                .sample
                .extend(values.iter().filter(|v| v.is_finite()).map(|v| v.abs()));
            stats.sample.truncate(MAX_SAMPLE);
        }
    }
}

/// Calibrated range of one layer's input activations.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LayerRange {
    /// The quantization scale (clipped amax / 127).
    pub scale: Float,
    /// Unclipped absolute maximum observed.
    pub amax: Float,
    /// Absolute maximum after percentile clipping — what maps to 127.
    pub clipped_amax: Float,
    /// Number of values the estimate is based on.
    pub observed: u64,
}

/// The calibration result: per-layer activation scales, keyed by the layer
/// names the engine's observer hooks use (e.g. `"attn.neighbor"`,
/// `"ftm.input"`, `"gru.input"`).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ActivationRanges {
    scales: HashMap<String, LayerRange>,
}

impl ActivationRanges {
    /// The calibrated scale of a layer.
    ///
    /// # Panics
    /// Panics if the layer was never observed — quantizing a layer without
    /// calibration data would silently produce garbage scales.
    pub fn scale(&self, layer: &str) -> Float {
        self.scales
            .get(layer)
            .unwrap_or_else(|| panic!("no calibration data recorded for layer {layer:?}"))
            .scale
    }

    /// The full range record of a layer, if observed.
    pub fn get(&self, layer: &str) -> Option<&LayerRange> {
        self.scales.get(layer)
    }

    /// True when the layer was observed during calibration.
    pub fn contains(&self, layer: &str) -> bool {
        self.scales.contains_key(layer)
    }

    /// Layer names observed, sorted (for reporting).
    pub fn layers(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.scales.keys().map(|s| s.as_str()).collect();
        names.sort_unstable();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_tracks_amax_and_percentile_clipping_tightens_the_scale() {
        let mut rec = ActivationRecorder::new();
        // 999 small values and one huge outlier.
        let mut values: Vec<Float> = (0..999).map(|i| (i % 100) as Float / 100.0).collect();
        values.push(1000.0);
        rec.record("layer", &values);

        let unclipped = rec.finish(&QuantConfig {
            clip_percentile: 100.0,
            ..QuantConfig::default()
        });
        let clipped = rec.finish(&QuantConfig {
            clip_percentile: 99.0,
            ..QuantConfig::default()
        });
        assert_eq!(unclipped.get("layer").unwrap().amax, 1000.0);
        assert!(clipped.scale("layer") < unclipped.scale("layer") / 100.0);
        assert_eq!(clipped.get("layer").unwrap().observed, 1000);
    }

    #[test]
    fn non_finite_activations_are_ignored_for_the_range() {
        let mut rec = ActivationRecorder::new();
        rec.record("l", &[1.0, Float::NAN, Float::INFINITY, -2.0]);
        let ranges = rec.finish(&QuantConfig::default());
        assert_eq!(ranges.get("l").unwrap().amax, 2.0);
        assert!(ranges.scale("l").is_finite());
    }

    #[test]
    #[should_panic(expected = "no calibration data")]
    fn uncalibrated_layer_lookup_panics() {
        let ranges = ActivationRecorder::new().finish(&QuantConfig::default());
        let _ = ranges.scale("missing");
    }

    #[test]
    fn reservoir_is_bounded() {
        let mut rec = ActivationRecorder::new();
        let chunk = vec![1.0 as Float; 10_000];
        for _ in 0..20 {
            rec.record("big", &chunk);
        }
        let ranges = rec.finish(&QuantConfig::default());
        assert_eq!(ranges.get("big").unwrap().observed, 200_000);
        assert!(ranges.scale("big") > 0.0);
    }
}
