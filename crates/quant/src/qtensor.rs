//! [`QTensor`] — a symmetric int8 quantized matrix with per-tensor or
//! per-row scales.
//!
//! Quantization is symmetric (`x ≈ q · scale`, zero-point 0) with saturating
//! round-to-nearest into `[-127, 127]`; −128 is never produced so the AVX2
//! `maddubs` kernel's intermediate bounds hold (see `tgnn_tensor::gemm_i8`).
//! Non-finite inputs are made safe at the boundary: NaN quantizes to 0,
//! ±∞ saturates — a `QTensor` never contains garbage and dequantizes to
//! finite values.

use serde::{Deserialize, Serialize};
use tgnn_tensor::gemm_i8::{quantize_value, Q_MAX};
use tgnn_tensor::{Float, Matrix};

/// How scales are attached to a [`QTensor`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScaleGranularity {
    /// One scale for the whole tensor (activations).
    PerTensor,
    /// One scale per row (weight matrices in `out_dim × in_dim` layout, so a
    /// row = one output feature).
    PerRow,
}

/// A symmetric int8 quantized `rows × cols` matrix.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct QTensor {
    data: Vec<i8>,
    rows: usize,
    cols: usize,
    /// One entry ([`ScaleGranularity::PerTensor`]) or `rows` entries
    /// ([`ScaleGranularity::PerRow`]).
    scales: Vec<Float>,
    granularity: ScaleGranularity,
}

/// Smallest scale used when a tensor (or row) is all zeros — keeps
/// dequantization exact (`0 · scale = 0`) while avoiding division by zero
/// during quantization.
const MIN_SCALE: Float = 1e-10;

/// Scale mapping an absolute maximum onto the int8 grid.
#[inline]
pub fn scale_for_amax(amax: Float) -> Float {
    let amax = if amax.is_finite() { amax.abs() } else { 0.0 };
    (amax / Q_MAX as Float).max(MIN_SCALE)
}

impl QTensor {
    /// Quantizes a matrix with one scale for the whole tensor, derived from
    /// its absolute maximum (non-finite entries are ignored for the range and
    /// saturate individually).
    pub fn quantize_per_tensor(m: &Matrix) -> Self {
        let amax = m
            .as_slice()
            .iter()
            .filter(|x| x.is_finite())
            .fold(0.0 as Float, |a, &x| a.max(x.abs()));
        Self::quantize_with_scales(m, &[scale_for_amax(amax)], ScaleGranularity::PerTensor)
    }

    /// Quantizes a matrix with one scale per row — the granularity used for
    /// weight matrices, where a row is one output feature and rows never mix
    /// in an accumulation.
    pub fn quantize_per_row(m: &Matrix) -> Self {
        let scales: Vec<Float> = (0..m.rows())
            .map(|i| {
                let amax = m
                    .row(i)
                    .iter()
                    .filter(|x| x.is_finite())
                    .fold(0.0 as Float, |a, &x| a.max(x.abs()));
                scale_for_amax(amax)
            })
            .collect();
        Self::quantize_with_scales(m, &scales, ScaleGranularity::PerRow)
    }

    /// Quantizes with externally supplied scales (e.g. calibrated activation
    /// ranges with percentile clipping — values beyond the clip saturate).
    ///
    /// # Panics
    /// Panics if the scale count does not match the granularity or a scale is
    /// not positive.
    pub fn quantize_with_scales(
        m: &Matrix,
        scales: &[Float],
        granularity: ScaleGranularity,
    ) -> Self {
        let expected = match granularity {
            ScaleGranularity::PerTensor => 1,
            ScaleGranularity::PerRow => m.rows(),
        };
        assert_eq!(scales.len(), expected, "QTensor: scale count mismatch");
        assert!(
            scales.iter().all(|&s| s > 0.0 && s.is_finite()),
            "QTensor: scales must be positive and finite"
        );
        let mut data = vec![0i8; m.rows() * m.cols()];
        for i in 0..m.rows() {
            let inv = 1.0
                / match granularity {
                    ScaleGranularity::PerTensor => scales[0],
                    ScaleGranularity::PerRow => scales[i],
                };
            for (d, &x) in data[i * m.cols()..(i + 1) * m.cols()]
                .iter_mut()
                .zip(m.row(i))
            {
                *d = quantize_value(x, inv);
            }
        }
        Self {
            data,
            rows: m.rows(),
            cols: m.cols(),
            scales: scales.to_vec(),
            granularity,
        }
    }

    /// Dequantizes back to f32.
    pub fn dequantize(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let s = self.row_scale(i);
            for (o, &q) in out.row_mut(i).iter_mut().zip(self.row(i)) {
                *o = q as Float * s;
            }
        }
        out
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The quantized values of row `i`.
    pub fn row(&self, i: usize) -> &[i8] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The raw quantized storage, row-major.
    pub fn as_slice(&self) -> &[i8] {
        &self.data
    }

    /// The scale of row `i` (the tensor scale under
    /// [`ScaleGranularity::PerTensor`]).
    pub fn row_scale(&self, i: usize) -> Float {
        match self.granularity {
            ScaleGranularity::PerTensor => self.scales[0],
            ScaleGranularity::PerRow => self.scales[i],
        }
    }

    /// All scales (length 1 or `rows`).
    pub fn scales(&self) -> &[Float] {
        &self.scales
    }

    /// The scale granularity.
    pub fn granularity(&self) -> ScaleGranularity {
        self.granularity
    }

    /// Worst-case absolute round-trip error bound per element: half a
    /// quantization step for in-range values.
    pub fn step_bound(&self) -> Float {
        0.5 * self.scales.iter().fold(0.0 as Float, |a, &s| a.max(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgnn_tensor::stats::max_abs_diff;
    use tgnn_tensor::TensorRng;

    #[test]
    fn round_trip_error_is_within_half_a_step_across_sizes_and_seeds() {
        for seed in [1u64, 7, 42] {
            let mut rng = TensorRng::new(seed);
            for &(r, c) in &[(1usize, 1usize), (3, 5), (17, 33), (64, 64)] {
                let m = rng.uniform_matrix(r, c, -3.0, 3.0);
                for q in [
                    QTensor::quantize_per_tensor(&m),
                    QTensor::quantize_per_row(&m),
                ] {
                    let back = q.dequantize();
                    let err = max_abs_diff(m.as_slice(), back.as_slice());
                    assert!(
                        err <= q.step_bound() + 1e-7,
                        "round-trip error {err} exceeds bound {} ({r}x{c}, seed {seed}, {:?})",
                        q.step_bound(),
                        q.granularity()
                    );
                }
            }
        }
    }

    #[test]
    fn per_row_is_at_least_as_tight_as_per_tensor() {
        let mut rng = TensorRng::new(9);
        // Rows with wildly different magnitudes: per-row scales must adapt.
        let mut m = rng.uniform_matrix(4, 16, -1.0, 1.0);
        for j in 0..16 {
            m[(0, j)] *= 100.0;
            m[(3, j)] *= 0.01;
        }
        let pt = QTensor::quantize_per_tensor(&m).dequantize();
        let pr = QTensor::quantize_per_row(&m).dequantize();
        let err_pt = max_abs_diff(m.row(3), pt.row(3));
        let err_pr = max_abs_diff(m.row(3), pr.row(3));
        assert!(
            err_pr < err_pt,
            "per-row must be tighter on the small row: {err_pr} vs {err_pt}"
        );
    }

    #[test]
    fn saturation_hits_exactly_plus_minus_qmax() {
        let m = Matrix::from_rows(&[vec![10.0, -10.0, 5.0, 0.0]]);
        // Clip scale chosen so ±10 saturates.
        let q = QTensor::quantize_with_scales(&m, &[5.0 / 127.0], ScaleGranularity::PerTensor);
        assert_eq!(q.row(0)[0], 127);
        assert_eq!(q.row(0)[1], -127);
        assert_eq!(q.row(0)[2], 127);
        assert_eq!(q.row(0)[3], 0);
    }

    #[test]
    fn non_finite_inputs_quantize_nan_free() {
        let m = Matrix::from_rows(&[vec![Float::NAN, Float::INFINITY, Float::NEG_INFINITY, 1.0]]);
        for q in [
            QTensor::quantize_per_tensor(&m),
            QTensor::quantize_per_row(&m),
        ] {
            assert_eq!(q.row(0)[0], 0, "NaN must quantize to 0");
            assert_eq!(q.row(0)[1], 127);
            assert_eq!(q.row(0)[2], -127);
            let back = q.dequantize();
            assert!(back.all_finite(), "dequantized tensor must be finite");
        }
    }

    #[test]
    fn all_zero_tensor_round_trips_exactly() {
        let m = Matrix::zeros(3, 4);
        let q = QTensor::quantize_per_row(&m);
        assert!(q.as_slice().iter().all(|&x| x == 0));
        assert_eq!(q.dequantize().as_slice(), m.as_slice());
    }
}
