//! Symmetric int8 fixed-point quantization for the TGNN inference stack —
//! the software counterpart of the paper's low-precision FPGA datapath.
//!
//! The FPGA co-design assumes fixed-point arithmetic throughout; on CPUs the
//! same numeric choice quadruples the values per SIMD lane and quarters the
//! weight-panel memory traffic that bounds the f32 packed GEMM.  This crate
//! provides the model-independent pieces:
//!
//! * [`QTensor`] — symmetric per-tensor / per-row int8 quantization with
//!   saturating round-to-nearest and a NaN-free guarantee.
//! * [`ActivationRecorder`] / [`ActivationRanges`] — the calibration pass:
//!   run the f32 engine over a sample stream, record per-layer activation
//!   ranges, derive static scales with percentile clipping.
//! * [`QuantizedLinear`] — an affine layer on the packed int8 GEMM
//!   (`tgnn_tensor::gemm_i8`) with pre-packed weights and a dequant-fused
//!   f32 epilogue.
//!
//! The model-aware assembly (quantized GRU / attention / FTM, the
//! `ExecMode::Quantized` engine path, and the calibration driver) lives in
//! `tgnn-core::quantized`, which builds on these types.

#![warn(missing_docs)]

pub mod calibrate;
pub mod qlinear;
pub mod qtensor;

pub use calibrate::{
    ActivationObserver, ActivationRanges, ActivationRecorder, LayerRange, QuantConfig,
};
pub use qlinear::QuantizedLinear;
pub use qtensor::{QTensor, ScaleGranularity};
