//! Observability tour: serve a stream with live metrics on, then dump the
//! three views the `tgnn_serve::metrics` hub exports — the human-readable
//! snapshot table, the Prometheus text exposition, and the flight-recorder
//! timeline of the last epochs (the post-mortem view that stays readable
//! even after a worker panic poisons the pipeline).
//!
//! A JSONL sampler thread also appends one snapshot line per 50 ms to a
//! temp file while the stream runs, the same mechanism `serve_bench
//! --metrics-out` uses for offline dashboards.
//!
//! Run with: `cargo run --release --example metrics_dump`

use std::sync::Arc;
use std::time::Duration;
use tgnn::prelude::*;
use tgnn_serve::render_flight_timeline;

fn main() {
    // 1. A small synthetic stream and the NP(M)-optimized model.
    let graph = Arc::new(generate(&wikipedia_like(0.005, 42)));
    let config = ModelConfig {
        memory_dim: 32,
        time_dim: 32,
        embedding_dim: 32,
        ..ModelConfig::paper_default(graph.node_feature_dim(), graph.edge_feature_dim())
    }
    .with_variant(OptimizationVariant::NpMedium);
    let model = TgnModel::new(config, &mut TensorRng::new(7));

    // 2. A pipelined server with metrics on (the default): every worker
    //    records stage spans into the bounded flight ring, and the hub
    //    aggregates counters, queue depths, and latency histograms.
    let serve_config = ServeConfig {
        max_batch: 64,
        batch_deadline: Duration::from_millis(5),
        num_shards: 4,
        gnn_workers: 2,
        ..ServeConfig::default()
    };
    let mut server = StreamServer::new(model, graph.clone(), serve_config);
    server.warm_up(graph.train_events());

    // 3. Sample the live snapshot to JSONL while the stream runs.
    let jsonl = std::env::temp_dir().join("tgnn-metrics-dump.jsonl");
    let logger = server
        .metrics_hub()
        .spawn_jsonl_sampler(&jsonl, Duration::from_millis(50))
        .expect("spawn sampler");

    for &event in &graph.events()[graph.train_end()..] {
        server.submit(event).expect("chronological stream");
        while server.poll().is_some() {}
    }
    let report = server.drain();
    while server.poll().is_some() {}
    logger.stop();

    // 4. The typed snapshot, rendered as a table...
    let snapshot = server.metrics();
    println!("{}", snapshot.render_table());

    // 5. ...and as Prometheus text exposition (excerpt).
    let prom = snapshot.to_prometheus();
    println!(
        "--- prometheus exposition ({} lines, excerpt) ---",
        prom.lines().count()
    );
    for line in prom.lines().filter(|l| l.starts_with("tgnn_stage_busy")) {
        println!("{line}");
    }

    // 6. The flight recorder: per-epoch stage timelines of the last epochs.
    //    After a panic this dump is exactly how you see where the poisoned
    //    epoch died (open spans render as `→…`).
    let records = server.metrics_hub().flight_dump();
    let timeline = render_flight_timeline(&records);
    let tail: Vec<&str> = timeline.lines().rev().take(8).collect();
    println!(
        "--- flight timeline (last {} of {} lines) ---",
        tail.len(),
        timeline.lines().count()
    );
    for line in tail.iter().rev() {
        println!("{line}");
    }

    println!(
        "\nserved {} events in {} micro-batches; JSONL samples in {}",
        report.num_events,
        report.num_batches,
        jsonl.display()
    );
}
