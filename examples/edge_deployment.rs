//! Edge (IoT) deployment study: compare the embedded ZCU104 design point with
//! the cloud U200 card and the CPU/GPU baselines on the same stream — the
//! scenario the paper motivates ZCU104 with ("useful for applications on
//! edge devices such as Internet of Things").
//!
//! Run with: `cargo run --release --example edge_deployment`

use tgnn::prelude::*;
use tgnn_data::delta_t::memory_delta_t;
use tgnn_hwsim::baseline::{BaselinePlatform, BaselineSimulator};

fn main() {
    let graph = generate(&wikipedia_like(0.01, 5));
    let batch_size = 200;

    println!(
        "stream: {} edges, batch size {batch_size}\n",
        graph.num_events()
    );
    println!(
        "{:<28} {:>14} {:>16}",
        "platform", "latency (ms)", "throughput (kE/s)"
    );

    // CPU / GPU baselines (calibrated cost models at paper scale).
    let paper_cfg = ModelConfig::paper_default(graph.node_feature_dim(), graph.edge_feature_dim())
        .with_variant(OptimizationVariant::Baseline);
    for platform in [
        BaselinePlatform::CpuSingleThread,
        BaselinePlatform::CpuMultiThread,
        BaselinePlatform::Gpu,
    ] {
        let sim = BaselineSimulator::new(platform, paper_cfg.clone());
        let est = sim.estimate(batch_size);
        println!(
            "{:<28} {:>14.3} {:>16.1}",
            platform.label(),
            est.latency * 1e3,
            est.throughput_eps / 1e3
        );
    }

    // FPGA design points running the NP(M) student.
    let run_cfg = ModelConfig {
        memory_dim: 32,
        time_dim: 32,
        embedding_dim: 32,
        ..ModelConfig::paper_default(graph.node_feature_dim(), graph.edge_feature_dim())
    }
    .with_variant(OptimizationVariant::NpMedium);

    for (design, device) in [
        (DesignConfig::u200(), FpgaDevice::alveo_u200()),
        (DesignConfig::zcu104(), FpgaDevice::zcu104()),
    ] {
        let mut rng = TensorRng::new(3);
        let mut model = TgnModel::new(run_cfg.clone(), &mut rng);
        model.calibrate_lut(&memory_delta_t(graph.events(), graph.num_nodes()));
        let mut sim = AcceleratorSim::new(model, graph.num_nodes(), device.clone(), design.clone());
        let take = graph.num_events().min(2_000);
        let report = sim.simulate_stream(&graph.events()[..take], &graph, batch_size);
        println!(
            "{:<28} {:>14.3} {:>16.1}",
            format!("{} (NP(M), simulated)", device.name),
            report.mean_latency() * 1e3,
            report.throughput_eps() / 1e3
        );
    }

    // Resource check for the embedded part.
    let usage = tgnn_hwsim::design::estimate_resources(&DesignConfig::zcu104(), &run_cfg);
    let fits = usage.fits(&FpgaDevice::zcu104());
    println!(
        "\nZCU104 resource check: {} DSPs, {} BRAMs, {} URAMs -> fits: {fits}",
        usage.dsps, usage.brams, usage.urams
    );
    println!("(the embedded board trades ~2-3x latency for a 10x smaller power/cost envelope)");
}
