//! Fraud-detection-style deployment: the motivating scenario from the
//! paper's introduction — "a fraud detection application would like to
//! frequently examine all users involved in newly appearing transactions."
//!
//! A transaction stream arrives in 15-minute windows; for every window we
//! produce fresh embeddings of the involved accounts, score each transaction
//! with a link decoder, and flag the lowest-scoring (most anomalous) ones.
//!
//! Run with: `cargo run --release --example fraud_detection`

use tgnn::prelude::*;
use tgnn_core::LinkDecoder;
use tgnn_graph::batching::time_window_batches;

fn main() {
    // A Reddit-like bipartite interaction graph stands in for an
    // account ↔ merchant transaction stream.
    let graph = generate(&reddit_like(0.004, 99));
    println!(
        "transaction stream: {} accounts+merchants, {} transactions",
        graph.num_nodes(),
        graph.num_events()
    );

    let config = ModelConfig {
        memory_dim: 32,
        time_dim: 32,
        embedding_dim: 32,
        ..ModelConfig::paper_default(graph.node_feature_dim(), graph.edge_feature_dim())
    }
    .with_variant(OptimizationVariant::NpSmall);
    let mut rng = TensorRng::new(11);
    let model = TgnModel::new(config.clone(), &mut rng);
    let decoder = LinkDecoder::new(config.embedding_dim, 32, &mut rng);

    let mut engine = InferenceEngine::new(model, graph.num_nodes());

    // Warm up on the historical portion of the stream.
    engine.warm_up(graph.train_events(), &graph);

    // Real-time portion: one inference pass per 15-minute window.
    let windows = time_window_batches(graph.test_events(), 15.0 * 60.0);
    println!("monitoring {} fifteen-minute windows...\n", windows.len());

    let mut flagged = 0usize;
    for (i, window) in windows.iter().enumerate() {
        if window.is_empty() {
            continue;
        }
        let out = engine.process_batch(window, &graph);

        // Score every transaction in the window; low scores = the model
        // finds the interaction unlikely = candidate fraud.
        let mut scores: Vec<(f32, u32, u32)> = window
            .events()
            .iter()
            .filter_map(|e| {
                let src = out.embedding_of(e.src)?;
                let dst = out.embedding_of(e.dst)?;
                Some((decoder.score(src, dst), e.src, e.dst))
            })
            .collect();
        scores.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let suspicious = scores.len().div_ceil(20); // bottom 5%
        flagged += suspicious;

        if i < 5 {
            println!(
                "window {i:>3}: {:>4} transactions, latency {:.2} ms, {} flagged for review",
                window.len(),
                out.latency.as_secs_f64() * 1e3,
                suspicious
            );
        }
    }

    println!(
        "\ntotal flagged transactions: {flagged} (out of {})",
        graph.test_events().len()
    );
    println!(
        "all vertex updates stayed chronological: {}",
        engine.commit_log().is_clean()
    );
}
