//! Design-space exploration with the analytical performance model of
//! Section V: sweep the number of Computation Units, the MAC-array size, and
//! the neighbor-pruning budget, and report predicted throughput/latency next
//! to the estimated DSP cost — the ablation study DESIGN.md calls out.
//!
//! Run with: `cargo run --release --example design_space_exploration`

use tgnn::prelude::*;
use tgnn_hwsim::design::estimate_resources;
use tgnn_hwsim::DdrModel;

fn main() {
    let device = FpgaDevice::alveo_u200();
    let ddr = DdrModel::new_gbps(device.ddr_bandwidth_gbps);
    let batch_size = 1000;

    println!(
        "design-space exploration on {} (batch size {batch_size})\n",
        device.name
    );
    println!(
        "{:<10} {:>5} {:>5} {:>8} {:>14} {:>14} {:>10} {:>6}",
        "variant", "Ncu", "Sg", "DSPs", "latency (ms)", "thpt (kE/s)", "DSP util", "fits"
    );

    for variant in [
        OptimizationVariant::SatLut,
        OptimizationVariant::NpLarge,
        OptimizationVariant::NpMedium,
        OptimizationVariant::NpSmall,
    ] {
        let model = ModelConfig::paper_default(0, 172).with_variant(variant);
        for num_cu in [1usize, 2, 4] {
            for sg in [4usize, 8, 16] {
                let mut design = DesignConfig::u200();
                design.num_cu = num_cu;
                design.sg = sg;
                design.name = format!("u200-{num_cu}cu-sg{sg}");

                let usage = estimate_resources(&design, &model);
                let fits = usage.fits(&device);
                let perf = PerformanceModel::new(design, model.clone(), ddr.clone());
                let p = perf.predict(batch_size);
                let dsp_util = usage.dsps as f64 / device.total_dsps() as f64;

                println!(
                    "{:<10} {:>5} {:>5} {:>8} {:>14.3} {:>14.1} {:>9.0}% {:>6}",
                    variant.label(),
                    num_cu,
                    sg,
                    usage.dsps,
                    p.latency * 1e3,
                    p.throughput_eps / 1e3,
                    dsp_util * 100.0,
                    fits
                );
            }
        }
        println!();
    }

    println!("Reading the sweep: throughput scales with Ncu and Sg until either the DSP budget");
    println!("is exhausted (fits = false) or the pipeline becomes memory-bound (T_LS > T_comp),");
    println!("at which point extra compute parallelism no longer helps — the same trade-off the");
    println!("paper's Table IV design points sit on.");
}
