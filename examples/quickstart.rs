//! Quickstart: generate a small temporal graph, build a TGN-attn model with
//! the paper's NP(M) optimizations, stream batches of edges through the
//! inference engine, and print the throughput/latency/complexity summary.
//!
//! Run with: `cargo run --release --example quickstart`

use tgnn::prelude::*;
use tgnn_data::delta_t::memory_delta_t;

fn main() {
    // 1. A synthetic Wikipedia-like interaction graph (1% of the paper's
    //    scale so the example runs in a couple of seconds).
    let graph = generate(&wikipedia_like(0.01, 42));
    println!(
        "dataset: {} — {} nodes, {} temporal edges, {}-dim edge features",
        graph.name(),
        graph.num_nodes(),
        graph.num_events(),
        graph.edge_feature_dim()
    );

    // 2. A TGN-attn model with the paper's optimizations applied: simplified
    //    attention + LUT time encoder + pruning to 4 neighbors (NP(M)).
    let config = ModelConfig {
        memory_dim: 32,
        time_dim: 32,
        embedding_dim: 32,
        ..ModelConfig::paper_default(graph.node_feature_dim(), graph.edge_feature_dim())
    }
    .with_variant(OptimizationVariant::NpMedium);
    let mut rng = TensorRng::new(7);
    let mut model = TgnModel::new(config, &mut rng);
    model.calibrate_lut(&memory_delta_t(graph.events(), graph.num_nodes()));
    println!(
        "model: {} parameters, variant NP(M)",
        model.num_parameters()
    );

    // 3. Stream the edges through the inference engine in batches of 200,
    //    exactly as a deployed system would (Algorithm 1 of the paper).
    let mut engine = InferenceEngine::new(model, graph.num_nodes());
    let report = engine.run_stream(graph.events(), &graph, 200);

    println!(
        "\nprocessed {} edges in {} batches",
        report.num_events, report.num_batches
    );
    println!(
        "generated {} dynamic node embeddings",
        report.num_embeddings
    );
    println!("throughput: {:.1} kE/s", report.throughput_eps() / 1e3);
    println!(
        "mean batch latency: {:.3} ms",
        report.mean_latency().as_secs_f64() * 1e3
    );
    println!(
        "per-embedding cost: {} kMAC, {} kMEM",
        report.ops_per_embedding().macs / 1000,
        report.ops_per_embedding().mems / 1000
    );
    println!(
        "chronological commits verified: {} commits, {} violations",
        engine.commit_log().commits(),
        engine.commit_log().violations()
    );
}
