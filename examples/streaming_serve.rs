//! Streaming serving: feed a continuous chronological event stream into the
//! pipelined `StreamServer`, poll embeddings as they complete, and print the
//! backpressure-aware serve report (throughput, queue depths, tail latency).
//!
//! Unlike `quickstart`, which drives the engine one synchronous batch at a
//! time, the server overlaps the pipeline stages: while batch *k* is in the
//! GNN compute stage, batch *k+1* is already sampling against the sharded
//! neighbor table — the software rendition of the paper's hardware pipeline.
//!
//! Run with: `cargo run --release --example streaming_serve`

use std::sync::Arc;
use std::time::Duration;
use tgnn::prelude::*;
use tgnn_data::delta_t::memory_delta_t;

fn main() {
    // 1. A synthetic Wikipedia-like interaction stream.
    let graph = Arc::new(generate(&wikipedia_like(0.01, 42)));
    println!(
        "dataset: {} — {} nodes, {} temporal edges",
        graph.name(),
        graph.num_nodes(),
        graph.num_events()
    );

    // 2. The NP(M)-optimized TGN-attn model.
    let config = ModelConfig {
        memory_dim: 32,
        time_dim: 32,
        embedding_dim: 32,
        ..ModelConfig::paper_default(graph.node_feature_dim(), graph.edge_feature_dim())
    }
    .with_variant(OptimizationVariant::NpMedium);
    let mut rng = TensorRng::new(7);
    let mut model = TgnModel::new(config, &mut rng);
    model.calibrate_lut(&memory_delta_t(graph.events(), graph.num_nodes()));

    // 3. A streaming server: 4 vertex shards, micro-batches of up to 200
    //    events sealed after at most 20 ms, and the dominant GNN compute
    //    stage data-parallel over 2 workers (the reorder stage keeps the
    //    output stream in epoch order and bit-identical to the serial
    //    engine for any worker count).
    let serve_config = ServeConfig {
        max_batch: 200,
        batch_deadline: Duration::from_millis(20),
        num_shards: 4,
        gnn_workers: 2,
        ..ServeConfig::default()
    };
    let mut server = StreamServer::new(model, graph.clone(), serve_config);

    // 4. Warm the vertex state on the train split (as the paper does before
    //    measuring), then stream the remaining events as they would arrive
    //    in production, polling completed batches as we go.
    server.warm_up(graph.train_events());
    let mut embeddings = 0usize;
    for &event in &graph.events()[graph.train_end()..] {
        server.submit(event).expect("chronological stream");
        while let Some(batch) = server.poll() {
            embeddings += batch.embeddings.len();
        }
    }

    // 5. Drain the pipeline and print the serve report.
    let report = server.drain();
    while let Some(batch) = server.poll() {
        embeddings += batch.embeddings.len();
    }
    println!(
        "served {} events in {} micro-batches → {} embeddings ({} gnn workers)",
        report.num_events, report.num_batches, embeddings, report.gnn_workers
    );
    println!(
        "throughput: {:.0} edges/sec — latency mean {:.3} ms, p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms",
        report.throughput_eps,
        report.latency.mean_ms,
        report.latency.p50_ms,
        report.latency.p95_ms,
        report.latency.p99_ms
    );
    println!(
        "chronological commits: {} (clean: {})",
        report.commits, report.commit_log_clean
    );
    println!("queue occupancy (backpressure picture):");
    for q in &report.queues {
        println!(
            "  {:>16}: cap {:>4}, max depth {:>4}, mean depth {:>6.2}, blocked sends {}",
            q.name, q.capacity, q.max_depth, q.mean_depth, q.blocked_sends
        );
    }
}
